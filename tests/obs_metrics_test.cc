// Unit tests for the observability substrate (src/obs): lock-free
// counters/histograms under concurrency, bucket-boundary semantics,
// snapshot consistency guarantees, merge, JSON round-tripping,
// percentile extraction, the metric-name lint, and the flight
// recorder's lock-free ring (including wraparound under concurrent
// writers — run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace sirep::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  EXPECT_EQ(registry.Snapshot().counters.at("test.counter"),
            kThreads * kPerThread);
}

TEST(CounterTest, AddAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.add");
  c->Add(3);
  c->Add(39);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->Value(), 8);
  g->Set(-3);
  EXPECT_EQ(registry.Snapshot().gauges.at("test.gauge"), -3);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("test.x"), registry.GetCounter("test.x"));
  EXPECT_EQ(registry.GetGauge("test.y"), registry.GetGauge("test.y"));
  EXPECT_EQ(registry.GetLatencyHistogram("test.z"),
            registry.GetLatencyHistogram("test.z"));
  EXPECT_NE(registry.GetCounter("test.x"), registry.GetCounter("test.x2"));
}

TEST(HistogramTest, BucketBoundaries) {
  // Bounds are inclusive upper bounds: a value lands in the first bucket
  // whose bound is >= value; above all bounds -> overflow bucket.
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0 (inclusive)
  hist.Observe(1.001);  // bucket 1
  hist.Observe(10.0);   // bucket 1
  hist.Observe(99.9);   // bucket 2
  hist.Observe(100.0);  // bucket 2
  hist.Observe(100.1);  // overflow
  hist.Observe(1e9);    // overflow

  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 8u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(HistogramTest, MeanAndQuantile) {
  Histogram hist(LatencyBucketsUs());
  for (int i = 0; i < 100; ++i) hist.Observe(100.0);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Mean(), 100.0);
  // All mass in one bucket; the quantile is clamped to [min, max].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.95), 100.0);

  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.95), 0.0);
}

TEST(HistogramTest, SnapshotConsistentUnderConcurrentObserves) {
  // Invariant: in any snapshot taken mid-flight, the bucket sum is >= the
  // count (count is bumped last with release ordering), and both only
  // grow.
  MetricsRegistry registry;
  Histogram* hist = registry.GetLatencyHistogram("test.lat");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([hist, &stop, t] {
      double v = 1.0 + t;
      // do-while: at least one observation even if the snapshot loop
      // below finishes before this thread gets scheduled.
      do {
        hist->Observe(v);
        v = v > 1e6 ? 1.0 : v * 1.7;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot snap = hist->Snapshot();
    uint64_t bucket_sum = 0;
    for (uint64_t b : snap.buckets) bucket_sum += b;
    EXPECT_GE(bucket_sum, snap.count);
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  stop.store(true);
  for (auto& t : writers) t.join();

  HistogramSnapshot final_snap = hist->Snapshot();
  uint64_t bucket_sum = 0;
  for (uint64_t b : final_snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, final_snap.count);  // quiescent: exact agreement
  EXPECT_GT(final_snap.count, 0u);
}

TEST(SnapshotTest, MergeAddsCountersGaugesAndBuckets) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("test.shared")->Add(10);
  b.GetCounter("test.shared")->Add(32);
  b.GetCounter("test.only_b")->Add(7);
  a.GetGauge("test.depth")->Set(3);
  b.GetGauge("test.depth")->Set(4);
  a.GetLatencyHistogram("test.lat")->Observe(5.0);
  b.GetLatencyHistogram("test.lat")->Observe(500.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("test.shared"), 42u);
  EXPECT_EQ(merged.counters.at("test.only_b"), 7u);
  EXPECT_EQ(merged.gauges.at("test.depth"), 7);
  const HistogramSnapshot& lat = merged.histograms.at("test.lat");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_DOUBLE_EQ(lat.sum, 505.0);
  EXPECT_DOUBLE_EQ(lat.min, 5.0);
  EXPECT_DOUBLE_EQ(lat.max, 500.0);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("mw.committed")->Add(1234);
  registry.GetCounter("mw.aborts")->Increment();
  registry.GetGauge("mw.queue_depth")->Set(-5);
  Histogram* lat = registry.GetLatencyHistogram("mw.commit.stage.apply_us");
  lat->Observe(0.75);
  lat->Observe(33.3);
  lat->Observe(1e7);  // overflow bucket
  registry.GetHistogram("storage.version_chain_len", LengthBuckets())
      ->Observe(12.0);

  MetricsSnapshot original = registry.Snapshot();
  const std::string json = original.ToJson();

  auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), original);

  // Round-tripping the re-serialization too (fixed point).
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(SnapshotTest, EmptyJsonRoundTrip) {
  MetricsSnapshot empty;
  auto parsed = MetricsSnapshot::FromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), empty);
}

TEST(SnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\":").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
}

TEST(SnapshotTest, PrometheusTextContainsSeries) {
  MetricsRegistry registry;
  registry.GetCounter("mw.committed")->Add(5);
  registry.GetLatencyHistogram("gcs.multicast_us")->Observe(10.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("mw_committed 5"), std::string::npos);
  EXPECT_NE(text.find("gcs_multicast_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(TraceTest, RecordsEveryStageOnce) {
  TxnTrace trace;
  trace.SetId("t1/42");
  for (int i = 0; i < kNumStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    trace.Begin(stage);
    trace.End(stage);
    EXPECT_EQ(trace.Count(stage), 1u) << StageName(stage);
    EXPECT_FALSE(trace.Running(stage));
  }

  MetricsRegistry registry;
  StageHistograms hists = StageHistograms::FromRegistry(&registry);
  trace.Flush(hists);
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(hists.stage[i]->Count(), 1u)
        << StageName(static_cast<Stage>(i));
  }
}

TEST(TraceTest, EndWithoutBeginIsIgnored) {
  TxnTrace trace;
  trace.End(Stage::kApply);
  EXPECT_EQ(trace.Count(Stage::kApply), 0u);
  EXPECT_EQ(trace.DurationNs(Stage::kApply), 0u);
}

TEST(TraceContextTest, ValidityAndEquality) {
  TraceContext empty;
  EXPECT_FALSE(empty.valid());

  TraceContext ctx;
  ctx.trace_id = 0x42;
  ctx.origin_replica = 2;
  ctx.origin_mono_ns = 123;
  ctx.origin_wall_ns = 456;
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx, ctx);
  EXPECT_FALSE(ctx == empty);
}

// --- percentile extraction from histogram buckets ----------------------

TEST(HistogramTest, SummaryPercentilesOrderedAndBounded) {
  Histogram hist(LatencyBucketsUs());
  for (int i = 1; i <= 1000; ++i) hist.Observe(static_cast<double>(i));
  const auto p = hist.Snapshot().SummaryPercentiles();
  EXPECT_EQ(p.count, 1000u);
  EXPECT_NEAR(p.mean, 500.5, 0.01);
  // Bucket interpolation is approximate, but the order and the [min,
  // max] clamp are guaranteed.
  EXPECT_LE(p.p50, p.p95);
  EXPECT_LE(p.p95, p.p99);
  EXPECT_GE(p.p50, 1.0);
  EXPECT_LE(p.p99, 1000.0);
}

TEST(SnapshotTest, PercentilesByNameZeroWhenAbsent) {
  MetricsRegistry registry;
  registry.GetLatencyHistogram("test.lat")->Observe(42.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Percentiles("test.lat").count, 1u);
  const auto missing = snap.Percentiles("test.no_such");
  EXPECT_EQ(missing.count, 0u);
  EXPECT_DOUBLE_EQ(missing.p99, 0.0);
}

// --- metric-name lint (CI satellite: component.noun_unit) --------------

TEST(MetricNameLintTest, AcceptsConventionalNames) {
  EXPECT_TRUE(IsValidMetricName("mw.committed"));
  EXPECT_TRUE(IsValidMetricName("mw.commit.stage.apply_us"));
  EXPECT_TRUE(IsValidMetricName("gcs.tcp.connect_retries"));
  EXPECT_TRUE(IsValidMetricName("storage.version_chain_len"));
  EXPECT_TRUE(IsValidMetricName("mw.clock.offset_estimate_ns"));
  // The partial-replication and recovery families introduced by the
  // later PRs must pass the same lint as the originals.
  EXPECT_TRUE(IsValidMetricName("mw.partial.writesets_skipped"));
  EXPECT_TRUE(IsValidMetricName("mw.partial.held_partitions"));
  EXPECT_TRUE(IsValidMetricName("mw.recovery.chunks_sent"));
  EXPECT_TRUE(IsValidMetricName("mw.recovery.donor_failovers"));
  EXPECT_TRUE(IsValidMetricName("mw.lock.tocommit.wait_us"));
}

TEST(MetricNameLintTest, RejectsMalformedNames) {
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("x"));            // single segment
  EXPECT_FALSE(IsValidMetricName("committed"));    // single segment
  EXPECT_FALSE(IsValidMetricName("Mw.foo"));       // uppercase
  EXPECT_FALSE(IsValidMetricName("mw.Foo"));       // uppercase
  EXPECT_FALSE(IsValidMetricName("mw."));          // trailing empty segment
  EXPECT_FALSE(IsValidMetricName(".mw"));          // leading empty segment
  EXPECT_FALSE(IsValidMetricName("mw..foo"));      // empty middle segment
  EXPECT_FALSE(IsValidMetricName("mw.9foo"));      // digit-leading segment
  EXPECT_FALSE(IsValidMetricName("mw._foo"));      // underscore-leading
  EXPECT_FALSE(IsValidMetricName("mw.foo-bar"));   // bad character
  EXPECT_FALSE(IsValidMetricName("mw foo.bar"));   // space
  // Stricter underscore rules: no trailing underscore, no runs.
  EXPECT_FALSE(IsValidMetricName("mw.foo_"));          // trailing
  EXPECT_FALSE(IsValidMetricName("mw.partial.foo_"));  // trailing, nested
  EXPECT_FALSE(IsValidMetricName("mw.foo__bar"));      // double underscore
  EXPECT_FALSE(IsValidMetricName("mw.recovery.a__b")); // double, nested
}

// --- sampling profiler + lock contention accounting --------------------

TEST(ProfilerTest, SamplerSeesAnnotatedSection) {
  // Section annotations always land on the global profiler (they must
  // be reachable from any thread without plumbing a handle), so that is
  // the instance under test.
  Profiler& profiler = Profiler::Global();
  profiler.ResetCounts();
  profiler.StartSampling(std::chrono::microseconds(200));
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    Profiler::Section section("test.profiled_section");
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  // Wait until the sampler has both ticked and caught the section.
  for (int i = 0; i < 200; ++i) {
    const auto snap = profiler.GetSnapshot();
    if (snap.sections.count("test.profiled_section") > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  worker.join();
  profiler.StopSampling();

  const auto snap = profiler.GetSnapshot();
  EXPECT_FALSE(snap.sampling);
  EXPECT_EQ(snap.interval_us, 200u);
  EXPECT_GT(snap.ticks, 0u);
  ASSERT_EQ(snap.sections.count("test.profiled_section"), 1u);
  EXPECT_GT(snap.sections.at("test.profiled_section"), 0u);

  const std::string json = profiler.SnapshotJson();
  EXPECT_NE(json.find("\"test.profiled_section\""), std::string::npos);
  EXPECT_NE(json.find("\"ticks\""), std::string::npos);

  profiler.ResetCounts();
  EXPECT_TRUE(profiler.GetSnapshot().sections.empty());
}

TEST(ProfilerTest, SectionsNestAndRestore) {
  Profiler& profiler = Profiler::Global();
  {
    Profiler::Section outer("test.outer");
    { Profiler::Section inner("test.inner"); }
    // Destructor of inner restored the outer annotation; nothing to
    // assert directly without the sampler, but this must not crash and
    // must be re-entrant.
    Profiler::Section again("test.inner");
  }
  (void)profiler;
}

TEST(LockStatsTest, AcquireProfiledCountsUncontendedAndContended) {
  MetricsRegistry registry;
  const LockStats stats = LockStats::FromRegistry(&registry, "test.lock");
  std::mutex mu;

  // Uncontended: acquires ticks, contended does not.
  { auto lock = AcquireProfiled(mu, stats); }
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test.lock.acquires"), 1u);
  EXPECT_EQ(snap.counters.count("test.lock.contended") != 0
                ? snap.counters.at("test.lock.contended")
                : 0u,
            0u);

  // Contended: a second thread blocks on a held mutex.
  {
    std::unique_lock<std::mutex> holder(mu);
    std::thread contender([&] { auto lock = AcquireProfiled(mu, stats); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    holder.unlock();
    contender.join();
  }
  snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("test.lock.acquires"), 2u);
  EXPECT_EQ(snap.counters.at("test.lock.contended"), 1u);
  EXPECT_GE(snap.Percentiles("test.lock.wait_us").count, 1u);
}

TEST(LockStatsTest, NullRegistryIsSafe) {
  const LockStats stats = LockStats::FromRegistry(nullptr, "test.lock");
  std::mutex mu;
  auto lock = AcquireProfiled(mu, stats);  // all-null handles: no-op
  EXPECT_TRUE(lock.owns_lock());
}

// --- flight recorder ---------------------------------------------------

TEST(FlightRecorderTest, RecordsAndDumpsInOrder) {
  FlightRecorder rec(64);
  rec.Record(FlightEventType::kViewChange, 1, 7, 3, "installed");
  rec.Record(FlightEventType::kValidation, 2, 41, 0, "accounts/[5]");
  EXPECT_EQ(rec.TotalRecorded(), 2u);

  const auto events = rec.Dump();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, FlightEventType::kViewChange);
  EXPECT_EQ(events[0].replica, 1u);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 3u);
  EXPECT_EQ(events[0].detail, "installed");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].type, FlightEventType::kValidation);
  EXPECT_EQ(events[1].detail, "accounts/[5]");

  const std::string text = rec.DumpText();
  EXPECT_NE(text.find("view_change"), std::string::npos);
  EXPECT_NE(text.find("validation_abort"), std::string::npos);
  EXPECT_NE(text.find("accounts/[5]"), std::string::npos);
}

TEST(FlightRecorderTest, DetailIsTruncatedNotCorrupted) {
  FlightRecorder rec(64);
  const std::string long_detail(200, 'k');
  rec.Record(FlightEventType::kInvariant, 0, 1, 2, long_detail);
  const auto events = rec.Dump();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].detail.size(), FlightRecorder::kDetailBytes);
  EXPECT_EQ(events[0].detail,
            long_detail.substr(0, events[0].detail.size()));
}

TEST(FlightRecorderTest, WraparoundUnderConcurrentWriters) {
  // The ring is much smaller than the event volume: every slot is
  // overwritten dozens of times from 4 threads at once. The dump must
  // still return only fully-published, untorn events (TSan-checked).
  FlightRecorder rec(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        rec.Record(FlightEventType::kQueueHighWater,
                   static_cast<uint32_t>(t), i, i * 2, "mw.tocommit");
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(rec.TotalRecorded(), kThreads * kPerThread);
  const auto events = rec.Dump();
  EXPECT_LE(events.size(), rec.capacity());
  EXPECT_GT(events.size(), 0u);
  uint64_t prev_seq = 0;
  bool first = true;
  for (const auto& e : events) {
    if (!first) EXPECT_GT(e.seq, prev_seq);  // oldest first, strictly
    prev_seq = e.seq;
    first = false;
    // Field consistency proves the slot was not torn.
    EXPECT_EQ(e.type, FlightEventType::kQueueHighWater);
    EXPECT_LT(e.replica, static_cast<uint32_t>(kThreads));
    EXPECT_EQ(e.b, e.a * 2);
    EXPECT_EQ(e.detail, "mw.tocommit");
    // Survivors are from the most recent window of claims.
    EXPECT_GE(e.seq, kThreads * kPerThread - rec.capacity());
  }
}

TEST(FlightRecorderTest, DumpWhileWritingSkipsTornSlots) {
  FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&rec, &stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rec.Record(FlightEventType::kFailpoint, 9, i, i + 1, "fp.test");
        ++i;
      }
    });
  }
  for (int round = 0; round < 100; ++round) {
    for (const auto& e : rec.Dump()) {
      EXPECT_EQ(e.type, FlightEventType::kFailpoint);
      EXPECT_EQ(e.replica, 9u);
      EXPECT_EQ(e.b, e.a + 1);
      EXPECT_EQ(e.detail, "fp.test");
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(FlightRecorderTest, GlobalRecorderAppearsInDumpAll) {
  FlightRecorder::Global().Record(FlightEventType::kInvariant, 0, 11, 22,
                                  "obs_metrics_test marker");
  const std::string all = FlightRecorder::DumpAllText();
  EXPECT_NE(all.find("obs_metrics_test marker"), std::string::npos);
}

}  // namespace
}  // namespace sirep::obs
