// Unit tests for the observability substrate (src/obs): lock-free
// counters/histograms under concurrency, bucket-boundary semantics,
// snapshot consistency guarantees, merge, and JSON round-tripping.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sirep::obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  EXPECT_EQ(registry.Snapshot().counters.at("test.counter"),
            kThreads * kPerThread);
}

TEST(CounterTest, AddAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.add");
  c->Add(3);
  c->Add(39);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->Value(), 8);
  g->Set(-3);
  EXPECT_EQ(registry.Snapshot().gauges.at("test.gauge"), -3);
}

TEST(RegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_EQ(registry.GetGauge("y"), registry.GetGauge("y"));
  EXPECT_EQ(registry.GetLatencyHistogram("z"),
            registry.GetLatencyHistogram("z"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("x2"));
}

TEST(HistogramTest, BucketBoundaries) {
  // Bounds are inclusive upper bounds: a value lands in the first bucket
  // whose bound is >= value; above all bounds -> overflow bucket.
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0 (inclusive)
  hist.Observe(1.001);  // bucket 1
  hist.Observe(10.0);   // bucket 1
  hist.Observe(99.9);   // bucket 2
  hist.Observe(100.0);  // bucket 2
  hist.Observe(100.1);  // overflow
  hist.Observe(1e9);    // overflow

  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 8u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(HistogramTest, MeanAndQuantile) {
  Histogram hist(LatencyBucketsUs());
  for (int i = 0; i < 100; ++i) hist.Observe(100.0);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Mean(), 100.0);
  // All mass in one bucket; the quantile is clamped to [min, max].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.95), 100.0);

  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.95), 0.0);
}

TEST(HistogramTest, SnapshotConsistentUnderConcurrentObserves) {
  // Invariant: in any snapshot taken mid-flight, the bucket sum is >= the
  // count (count is bumped last with release ordering), and both only
  // grow.
  MetricsRegistry registry;
  Histogram* hist = registry.GetLatencyHistogram("test.lat");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([hist, &stop, t] {
      double v = 1.0 + t;
      // do-while: at least one observation even if the snapshot loop
      // below finishes before this thread gets scheduled.
      do {
        hist->Observe(v);
        v = v > 1e6 ? 1.0 : v * 1.7;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot snap = hist->Snapshot();
    uint64_t bucket_sum = 0;
    for (uint64_t b : snap.buckets) bucket_sum += b;
    EXPECT_GE(bucket_sum, snap.count);
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
  }
  stop.store(true);
  for (auto& t : writers) t.join();

  HistogramSnapshot final_snap = hist->Snapshot();
  uint64_t bucket_sum = 0;
  for (uint64_t b : final_snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, final_snap.count);  // quiescent: exact agreement
  EXPECT_GT(final_snap.count, 0u);
}

TEST(SnapshotTest, MergeAddsCountersGaugesAndBuckets) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("shared")->Add(10);
  b.GetCounter("shared")->Add(32);
  b.GetCounter("only_b")->Add(7);
  a.GetGauge("depth")->Set(3);
  b.GetGauge("depth")->Set(4);
  a.GetLatencyHistogram("lat")->Observe(5.0);
  b.GetLatencyHistogram("lat")->Observe(500.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("shared"), 42u);
  EXPECT_EQ(merged.counters.at("only_b"), 7u);
  EXPECT_EQ(merged.gauges.at("depth"), 7);
  const HistogramSnapshot& lat = merged.histograms.at("lat");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_DOUBLE_EQ(lat.sum, 505.0);
  EXPECT_DOUBLE_EQ(lat.min, 5.0);
  EXPECT_DOUBLE_EQ(lat.max, 500.0);
}

TEST(SnapshotTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("mw.committed")->Add(1234);
  registry.GetCounter("mw.aborts")->Increment();
  registry.GetGauge("mw.queue_depth")->Set(-5);
  Histogram* lat = registry.GetLatencyHistogram("mw.commit.stage.apply_us");
  lat->Observe(0.75);
  lat->Observe(33.3);
  lat->Observe(1e7);  // overflow bucket
  registry.GetHistogram("storage.version_chain_len", LengthBuckets())
      ->Observe(12.0);

  MetricsSnapshot original = registry.Snapshot();
  const std::string json = original.ToJson();

  auto parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), original);

  // Round-tripping the re-serialization too (fixed point).
  EXPECT_EQ(parsed.value().ToJson(), json);
}

TEST(SnapshotTest, EmptyJsonRoundTrip) {
  MetricsSnapshot empty;
  auto parsed = MetricsSnapshot::FromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), empty);
}

TEST(SnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\":").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
}

TEST(SnapshotTest, PrometheusTextContainsSeries) {
  MetricsRegistry registry;
  registry.GetCounter("mw.committed")->Add(5);
  registry.GetLatencyHistogram("gcs.multicast_us")->Observe(10.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("mw_committed 5"), std::string::npos);
  EXPECT_NE(text.find("gcs_multicast_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(TraceTest, RecordsEveryStageOnce) {
  TxnTrace trace;
  trace.SetId("t1/42");
  for (int i = 0; i < kNumStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    trace.Begin(stage);
    trace.End(stage);
    EXPECT_EQ(trace.Count(stage), 1u) << StageName(stage);
    EXPECT_FALSE(trace.Running(stage));
  }

  MetricsRegistry registry;
  StageHistograms hists = StageHistograms::FromRegistry(&registry);
  trace.Flush(hists);
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(hists.stage[i]->Count(), 1u)
        << StageName(static_cast<Stage>(i));
  }
}

TEST(TraceTest, EndWithoutBeginIsIgnored) {
  TxnTrace trace;
  trace.End(Stage::kApply);
  EXPECT_EQ(trace.Count(Stage::kApply), 0u);
  EXPECT_EQ(trace.DurationNs(Stage::kApply), 0u);
}

}  // namespace
}  // namespace sirep::obs
