// Replicated DDL: CREATE TABLE / CREATE INDEX issued through the driver
// take effect at every replica at the same total-order position, so
// writesets referencing new tables always find them; recovery replays
// schema changes from the writeset log.

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

std::unique_ptr<Cluster> MakeCluster(size_t n) {
  ClusterOptions options;
  options.num_replicas = n;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  return cluster;
}

TEST(DdlReplicationTest, CreateTableReachesAllReplicas) {
  auto cluster = MakeCluster(3);
  auto conn = std::move(cluster->Connect()).value();
  ASSERT_TRUE(conn->Execute("CREATE TABLE t (k INT, v INT, "
                            "PRIMARY KEY (k))")
                  .ok());
  cluster->Quiesce();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_NE(cluster->db(r)->engine().GetTable("t"), nullptr)
        << "replica " << r;
  }
}

TEST(DdlReplicationTest, WritesAfterDdlApplyEverywhere) {
  auto cluster = MakeCluster(3);
  auto conn = std::move(cluster->Connect()).value();
  ASSERT_TRUE(conn->Execute("CREATE TABLE t (k INT, v INT, "
                            "PRIMARY KEY (k))")
                  .ok());
  // Immediately write through the same connection: the insert's writeset
  // is ordered after the DDL at every replica.
  ASSERT_TRUE(conn->Execute("INSERT INTO t VALUES (1, 42)").ok());
  cluster->Quiesce();
  for (size_t r = 0; r < 3; ++r) {
    auto res = cluster->db(r)->ExecuteAutoCommit(
        "SELECT v FROM t WHERE k = 1");
    ASSERT_TRUE(res.ok()) << "replica " << r << ": " << res.status();
    EXPECT_EQ(res.value().rows[0][0].AsInt(), 42) << "replica " << r;
  }
  auto stats = cluster->AggregateStats();
  EXPECT_EQ(stats.remote_discards, 0u);
}

TEST(DdlReplicationTest, CreateIndexReplicates) {
  auto cluster = MakeCluster(2);
  auto conn = std::move(cluster->Connect()).value();
  ASSERT_TRUE(conn->Execute("CREATE TABLE t (k INT, v INT, "
                            "PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(conn->Execute("CREATE INDEX t_v ON t (v)").ok());
  cluster->Quiesce();
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_TRUE(cluster->db(r)->engine().GetTable("t")->HasIndex("v"))
        << "replica " << r;
  }
}

TEST(DdlReplicationTest, DuplicateCreateFailsEverywhereConsistently) {
  auto cluster = MakeCluster(2);
  auto conn = std::move(cluster->Connect()).value();
  ASSERT_TRUE(conn->Execute("CREATE TABLE t (k INT, PRIMARY KEY (k))").ok());
  auto dup = conn->Execute("CREATE TABLE t (k INT, PRIMARY KEY (k))");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DdlReplicationTest, RecoveryReplaysDdlFromLog) {
  auto cluster = MakeCluster(3);
  auto conn = std::move(cluster->Connect()).value();
  ASSERT_TRUE(conn->Execute("CREATE TABLE old (k INT, PRIMARY KEY (k))").ok());
  cluster->Quiesce();
  cluster->CrashReplica(2);
  // Schema evolves while replica 2 is down.
  ASSERT_TRUE(conn->Execute("CREATE TABLE fresh (k INT, v INT, "
                            "PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(conn->Execute("INSERT INTO fresh VALUES (1, 7)").ok());
  cluster->Quiesce();
  ASSERT_TRUE(cluster->RestartReplica(2).ok());
  auto res = cluster->db(2)->ExecuteAutoCommit(
      "SELECT v FROM fresh WHERE k = 1");
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res.value().rows[0][0].AsInt(), 7);
}

TEST(DdlReplicationTest, FreshReplicaGetsSchemaViaFullCopy) {
  // Tiny log forces the full-copy path, whose table dumps carry schemas:
  // a node that never saw the replicated CREATE TABLE still ends up with
  // the table.
  ClusterOptions options;
  options.num_replicas = 2;
  options.replica.ws_log_capacity = 2;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  auto conn = std::move(cluster.Connect()).value();
  ASSERT_TRUE(conn->Execute("CREATE TABLE t (k INT, v INT, "
                            "PRIMARY KEY (k))")
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(conn->Execute("INSERT INTO t VALUES (?, ?)",
                              {Value::Int(i), Value::Int(i * 2)})
                    .ok());
  }
  cluster.Quiesce();
  auto added = cluster.AddReplica(
      [](engine::Database*) { return Status::OK(); });  // no schema given
  ASSERT_TRUE(added.ok()) << added.status();
  auto res = cluster.db(added.value())
                 ->ExecuteAutoCommit("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res.value().rows[0][0].AsInt(), 10);
}

TEST(DdlReplicationTest, DdlUnderConcurrentTraffic) {
  auto cluster = MakeCluster(3);
  auto setup = std::move(cluster->Connect()).value();
  ASSERT_TRUE(
      setup->Execute("CREATE TABLE base (k INT, v INT, PRIMARY KEY (k))")
          .ok());
  for (int k = 0; k < 8; ++k) {
    ASSERT_TRUE(setup->Execute("INSERT INTO base VALUES (?, 0)",
                               {Value::Int(k)})
                    .ok());
  }
  cluster->Quiesce();

  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      client::ConnectionOptions copt;
      copt.seed = 100 + w;
      auto conn = cluster->Connect(copt);
      if (!conn.ok()) return;
      conn.value()->SetAutoCommit(false);
      Prng prng(w);
      while (!stop.load()) {
        auto r = conn.value()->Execute(
            "UPDATE base SET v = v + 1 WHERE k = ?",
            {Value::Int(static_cast<int64_t>(prng.Uniform(8)))});
        if (r.ok() && conn.value()->Commit().ok()) {
          committed.fetch_add(1);
        } else {
          conn.value()->Rollback();
        }
      }
    });
  }
  // DDL storms while the writers run.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(setup
                    ->Execute("CREATE TABLE extra" + std::to_string(i) +
                              " (k INT, PRIMARY KEY (k))")
                    .ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : writers) t.join();
  cluster->Quiesce();
  EXPECT_GT(committed.load(), 0);
  // All replicas converged on both data and schema.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster->db(r)->engine().TableNames().size(), 6u)
        << "replica " << r;
    auto sum = cluster->db(r)->ExecuteAutoCommit("SELECT SUM(v) FROM base");
    EXPECT_EQ(sum.value().rows[0][0].AsInt(), committed.load())
        << "replica " << r;
  }
}

}  // namespace
}  // namespace sirep
