// Deterministic interleaving tests for the parallel remote-apply
// pipeline (ISSUE: two conflicting + two non-conflicting delivered
// writesets through the worker pool; visibility order and final state
// must match the serial path). The interleaving is made deterministic by
// *gating*, not sleeps: the conflicting successor can only enter the
// pipeline once ToCommitQueue::Remove() ran for its predecessor, and the
// adversarial schedule blocks the predecessor's apply until both
// non-conflicting writesets have been applied by other workers — which
// also exercises work stealing. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "middleware/apply_pipeline.h"
#include "middleware/tocommit_queue.h"
#include "sql/value.h"
#include "storage/write_set.h"

namespace sirep::middleware {
namespace {

using storage::WriteOp;
using storage::WriteSet;

std::shared_ptr<const WriteSet> Ws(
    std::initializer_list<std::pair<const char*, int64_t>> tuples) {
  auto ws = std::make_shared<WriteSet>();
  for (const auto& [table, key] : tuples) {
    ws->Record({table, sql::Key{{sql::Value::Int(key)}}}, WriteOp::kUpdate,
               {sql::Value::Int(key)});
  }
  return ws;
}

/// Drives the replica's dispatch protocol against a scripted "database":
/// queue four writesets (tids 1 and 2 conflict on tuple x; 3 and 4 are
/// independent), pump dispatchable entries into the pipeline, and treat
/// each apply as an immediate commit (Remove + re-pump, exactly what
/// SrcaRepReplica::ApplyRemote + ScheduleAppliers do). Records the apply
/// order and the per-tuple last-writer "state". When `adversarial` is
/// true, tid 1's apply blocks until tids 3 and 4 finish on other workers.
struct PipelineRun {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;                         // gates the first apply
  std::vector<uint64_t> order;                  // apply order, by tid
  std::map<std::string, uint64_t> state;        // "table:key" -> last tid
  ToCommitQueue queue;
  std::unique_ptr<ApplyPipeline> pipeline;

  bool Applied(uint64_t tid) {
    for (uint64_t t : order) {
      if (t == tid) return true;
    }
    return false;
  }

  void Run(size_t threads, bool adversarial) {
    pipeline = ApplyPipeline::Create(
        threads,
        [&](ToCommitEntry entry) {
          {
            std::unique_lock<std::mutex> lock(mu);
            // No apply proceeds until the initial Pump() finished all
            // its Dispatch calls — otherwise a fast worker could commit
            // tid 1 and self-dispatch tid 2 between Dispatch(1) and
            // Dispatch(3), making the observed order scheduling-
            // dependent (seen under TSan).
            cv.wait(lock, [&] { return started; });
            if (adversarial && entry.tid == 1) {
              // Hold the predecessor's apply until the two independent
              // writesets were applied — necessarily by other workers.
              cv.wait(lock, [&] { return Applied(3) && Applied(4); });
            }
            order.push_back(entry.tid);
            for (const auto& we : entry.ws->entries()) {
              state[we.tuple.table + ":" +
                    we.tuple.key.parts[0].ToString()] = entry.tid;
            }
            cv.notify_all();
          }
          queue.Remove(entry.tid);  // "commit"
          Pump();
        },
        /*registry=*/nullptr);

    queue.Append({1, {1, 1}, false, Ws({{"x", 7}}), false});
    queue.Append({2, {1, 2}, false, Ws({{"x", 7}}), false});  // conflicts w/ 1
    queue.Append({3, {1, 3}, false, Ws({{"c", 3}}), false});
    queue.Append({4, {1, 4}, false, Ws({{"d", 4}}), false});
    Pump();
    {
      std::lock_guard<std::mutex> lock(mu);
      started = true;
    }
    cv.notify_all();

    queue.WaitUntilEmpty(nullptr);
    pipeline->Shutdown();
  }

  void Pump() {
    for (auto& entry : queue.TakeDispatchableRemotes()) {
      pipeline->Dispatch(std::move(entry));
    }
  }

  size_t IndexOf(uint64_t tid) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == tid) return i;
    }
    ADD_FAILURE() << "tid " << tid << " never applied";
    return order.size();
  }
};

TEST(ApplyPipelineTest, SerialPathAppliesAllInDispatchOrder) {
  PipelineRun run;
  run.Run(/*threads=*/1, /*adversarial=*/false);
  // Width 1 preserves strict dispatch order: 1, 3, 4 were dispatched
  // together (in ready order), 2 only after 1 committed.
  ASSERT_EQ(run.order.size(), 4u);
  EXPECT_EQ(run.order, (std::vector<uint64_t>{1, 3, 4, 2}));
}

TEST(ApplyPipelineTest, AdversarialParallelInterleavingMatchesSerial) {
  PipelineRun serial;
  serial.Run(/*threads=*/1, /*adversarial=*/false);

  PipelineRun parallel;
  parallel.Run(/*threads=*/4, /*adversarial=*/true);

  ASSERT_EQ(parallel.order.size(), 4u);
  // Visibility order: the conflicting successor (2) applied only after
  // its predecessor (1), even though 1 was stalled while 3 and 4 ran.
  EXPECT_LT(parallel.IndexOf(1), parallel.IndexOf(2));
  // The stall really was concurrent: 3 and 4 finished before 1 did.
  EXPECT_LT(parallel.IndexOf(3), parallel.IndexOf(1));
  EXPECT_LT(parallel.IndexOf(4), parallel.IndexOf(1));
  // Final database state is order-independent and equals the serial run.
  EXPECT_EQ(parallel.state, serial.state);
  EXPECT_EQ(parallel.state.at("x:7"), 2u);
}

TEST(ApplyPipelineTest, ShutdownDrainsQueuedEntries) {
  std::atomic<int> applied{0};
  std::mutex gate;
  gate.lock();  // stall the first apply so the rest stay queued
  auto pipeline = ApplyPipeline::Create(
      2,
      [&](ToCommitEntry) {
        if (applied.fetch_add(1) == 0) {
          gate.lock();  // first apply waits until the test releases it
          gate.unlock();
        }
      },
      nullptr);
  for (uint64_t tid = 1; tid <= 8; ++tid) {
    pipeline->Dispatch({tid, {1, tid}, false, Ws({{"t", 1}}), false});
  }
  gate.unlock();
  pipeline->Shutdown();  // must drain everything queued before joining
  EXPECT_EQ(applied.load(), 8);
}

TEST(ApplyPipelineTest, ThreadsFromEnvOverridesConfiguration) {
  ::unsetenv("SIREP_APPLY_THREADS");
  EXPECT_EQ(ApplyPipeline::ThreadsFromEnv(8), 8u);
  EXPECT_EQ(ApplyPipeline::ThreadsFromEnv(0), 1u);
  ::setenv("SIREP_APPLY_THREADS", "4", 1);
  EXPECT_EQ(ApplyPipeline::ThreadsFromEnv(8), 4u);
  ::setenv("SIREP_APPLY_THREADS", "1", 1);
  EXPECT_EQ(ApplyPipeline::ThreadsFromEnv(8), 1u);
  ::setenv("SIREP_APPLY_THREADS", "garbage", 1);
  EXPECT_EQ(ApplyPipeline::ThreadsFromEnv(8), 8u);
  ::unsetenv("SIREP_APPLY_THREADS");
}

// End-to-end A/B: the same conflicting + non-conflicting workload on a
// full SRCA-Rep cluster pinned to the serial pipeline and to a 4-wide
// pipeline must converge to identical, correct state at every replica.
TEST(ApplyPipelineTest, ClusterConvergesIdenticallyInBothPipelineModes) {
  std::map<std::string, int64_t> results[2];
  const char* widths[2] = {"1", "4"};
  for (int mode = 0; mode < 2; ++mode) {
    ::setenv("SIREP_APPLY_THREADS", widths[mode], 1);
    cluster::ClusterOptions options;
    options.num_replicas = 3;
    options.replica.mode = ReplicaMode::kSrcaRep;
    cluster::Cluster cluster(options);
    ASSERT_TRUE(cluster.Start().ok());
    ASSERT_TRUE(cluster
                    .ExecuteEverywhere(
                        "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                    .ok());
    for (int k = 0; k < 8; ++k) {
      ASSERT_TRUE(cluster
                      .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                         {sql::Value::Int(k)})
                      .ok());
    }
    // Three writers per replica: one hammers the shared key 0 (forced
    // conflicts, per-tuple FIFO ordering) and the others spread over
    // disjoint keys (parallel applies).
    std::vector<std::thread> writers;
    for (size_t r = 0; r < 3; ++r) {
      for (int w = 0; w < 3; ++w) {
        writers.emplace_back([&cluster, r, w] {
          auto* mw = cluster.replica(r);
          const int64_t key = w == 0 ? 0 : static_cast<int64_t>(1 + r * 2 + w);
          for (int i = 0; i < 30; ++i) {
            auto txn = mw->BeginTxn();
            if (!txn.ok()) continue;
            auto handle = std::move(txn).value();
            if (!mw->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = ?",
                             {sql::Value::Int(key)})
                     .ok()) {
              mw->RollbackTxn(handle);
              continue;
            }
            (void)mw->CommitTxn(handle);
          }
        });
      }
    }
    for (auto& t : writers) t.join();
    cluster.Quiesce();
    // Order-independent drain check: whatever order the pipeline applied
    // in, Quiesce means every validated writeset committed everywhere.
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(cluster.replica(r)->PendingQueueSize(), 0u);
    }
    auto rows =
        cluster.db(0)->ExecuteAutoCommit("SELECT k, v FROM kv ORDER BY k");
    ASSERT_TRUE(rows.ok());
    for (const auto& row : rows.value().rows) {
      results[mode][row[0].ToString()] = row[1].AsInt();
    }
    for (size_t r = 1; r < 3; ++r) {
      auto rr =
          cluster.db(r)->ExecuteAutoCommit("SELECT k, v FROM kv ORDER BY k");
      ASSERT_TRUE(rr.ok());
      ASSERT_EQ(rr.value().NumRows(), rows.value().NumRows());
      for (size_t i = 0; i < rr.value().rows.size(); ++i) {
        EXPECT_EQ(rr.value().rows[i][1].AsInt(),
                  rows.value().rows[i][1].AsInt())
            << "replica " << r << " diverged at row " << i << " (width "
            << widths[mode] << ")";
      }
    }
  }
  ::unsetenv("SIREP_APPLY_THREADS");
  // Committed counts can differ between runs (aborts are timing
  // dependent), but both modes must produce a fully converged cluster —
  // the assertions above — and every key must have absorbed updates.
  for (int mode = 0; mode < 2; ++mode) {
    int64_t total = 0;
    for (const auto& [k, v] : results[mode]) total += v;
    EXPECT_GT(total, 0) << "width " << widths[mode];
  }
}

}  // namespace
}  // namespace sirep::middleware
