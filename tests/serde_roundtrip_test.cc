// Round-trip and corruption tests for the wire formats introduced with
// the byte-shipping transport: writeset encoding (storage/write_set.h),
// the middleware message payloads (middleware/messages.h), and the GCS
// batch frame (gcs/wire.h). Malformed input of any shape must come back
// as kInvalidArgument — never a crash or an out-of-bounds read.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "gcs/wire.h"
#include "middleware/messages.h"
#include "obs/trace.h"
#include "sql/serde.h"
#include "sql/value.h"
#include "storage/write_set.h"

namespace sirep {
namespace {

using middleware::DdlMessage;
using middleware::GlobalTxnId;
using middleware::WriteSetMessage;
using sql::Value;
using storage::WriteOp;
using storage::WriteSet;

storage::TupleId Tuple(std::string table, Value key) {
  storage::TupleId id;
  id.table = std::move(table);
  id.key.parts = {std::move(key)};
  return id;
}

/// A writeset exercising every value type and every op.
WriteSet SampleWriteSet() {
  WriteSet ws;
  ws.Record(Tuple("accounts", Value::Int(1)), WriteOp::kInsert,
            {Value::Int(1), Value::String("alice"), Value::Double(99.5),
             Value::Bool(true), Value::Null()});
  ws.Record(Tuple("accounts", Value::Int(2)), WriteOp::kUpdate,
            {Value::Int(2), Value::String("bob"), Value::Double(-3.25),
             Value::Bool(false), Value::Null()});
  ws.Record(Tuple("audit", Value::String(std::string("k\0y", 3))),
            WriteOp::kDelete, {});
  return ws;
}

void ExpectWriteSetsEqual(const WriteSet& a, const WriteSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    EXPECT_EQ(ea.tuple, eb.tuple) << "entry " << i;
    EXPECT_EQ(ea.op, eb.op) << "entry " << i;
    EXPECT_EQ(ea.after, eb.after) << "entry " << i;
  }
}

// --- WriteSet ---------------------------------------------------------

TEST(WriteSetSerdeTest, RoundTripsAllValueTypesAndOps) {
  const WriteSet ws = SampleWriteSet();
  std::string encoded;
  storage::EncodeWriteSet(ws, &encoded);

  WriteSet decoded;
  size_t pos = 0;
  ASSERT_TRUE(storage::DecodeWriteSet(encoded, &pos, &decoded).ok());
  EXPECT_EQ(pos, encoded.size());
  ExpectWriteSetsEqual(ws, decoded);
}

TEST(WriteSetSerdeTest, RoundTripsEmpty) {
  WriteSet ws;
  std::string encoded;
  storage::EncodeWriteSet(ws, &encoded);
  WriteSet decoded;
  // Pre-populate to prove decode clears.
  decoded.Record(Tuple("junk", Value::Int(9)), WriteOp::kInsert,
                 {Value::Int(9)});
  size_t pos = 0;
  ASSERT_TRUE(storage::DecodeWriteSet(encoded, &pos, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(WriteSetSerdeTest, RoundTripPreservesCoalescing) {
  WriteSet ws;
  ws.Record(Tuple("t", Value::Int(1)), WriteOp::kInsert, {Value::Int(10)});
  ws.Record(Tuple("t", Value::Int(1)), WriteOp::kUpdate, {Value::Int(20)});
  ws.Record(Tuple("t", Value::Int(2)), WriteOp::kUpdate, {Value::Int(30)});
  ws.Record(Tuple("t", Value::Int(2)), WriteOp::kDelete, {});
  ASSERT_EQ(ws.size(), 2u);  // coalesced before encoding

  std::string encoded;
  storage::EncodeWriteSet(ws, &encoded);
  WriteSet decoded;
  size_t pos = 0;
  ASSERT_TRUE(storage::DecodeWriteSet(encoded, &pos, &decoded).ok());
  ExpectWriteSetsEqual(ws, decoded);
  // Intersection semantics survive the trip.
  WriteSet probe;
  probe.Record(Tuple("t", Value::Int(2)), WriteOp::kUpdate, {Value::Int(0)});
  EXPECT_TRUE(decoded.Intersects(probe));
}

TEST(WriteSetSerdeTest, EveryTruncationFailsCleanly) {
  std::string encoded;
  storage::EncodeWriteSet(SampleWriteSet(), &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    const std::string truncated = encoded.substr(0, len);
    WriteSet decoded;
    size_t pos = 0;
    const Status status = storage::DecodeWriteSet(truncated, &pos, &decoded);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
}

TEST(WriteSetSerdeTest, RejectsBadVersion) {
  std::string encoded;
  storage::EncodeWriteSet(SampleWriteSet(), &encoded);
  encoded[0] = static_cast<char>(0xEE);
  WriteSet decoded;
  size_t pos = 0;
  EXPECT_EQ(storage::DecodeWriteSet(encoded, &pos, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(WriteSetSerdeTest, RejectsOverlongCount) {
  std::string encoded;
  storage::EncodeWriteSet(SampleWriteSet(), &encoded);
  // Claim 2^32-1 entries in a buffer that can't possibly hold them.
  for (size_t i = 1; i <= 4; ++i) encoded[i] = static_cast<char>(0xFF);
  WriteSet decoded;
  size_t pos = 0;
  EXPECT_EQ(storage::DecodeWriteSet(encoded, &pos, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(WriteSetSerdeTest, RejectsOutOfRangeOp) {
  // Single delete entry with table "t" and key [Int(7)]:
  //   ver(1) count(4) table(4+1) keyrow(4 + tag(1)+int(8)) op(1) after(4)
  // puts the op byte at offset 23.
  WriteSet ws;
  ws.Record(Tuple("t", Value::Int(7)), WriteOp::kDelete, {});
  std::string encoded;
  storage::EncodeWriteSet(ws, &encoded);
  ASSERT_EQ(encoded[23], static_cast<char>(WriteOp::kDelete));
  encoded[23] = 0x7F;
  WriteSet decoded;
  size_t pos = 0;
  EXPECT_EQ(storage::DecodeWriteSet(encoded, &pos, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(WriteSetSerdeTest, RejectsCorruptValueTag) {
  WriteSet ws;
  ws.Record(Tuple("t", Value::Int(7)), WriteOp::kDelete, {});
  std::string encoded;
  storage::EncodeWriteSet(ws, &encoded);
  // First key value's serde type tag sits at offset 14 (see layout
  // above); the INT wire tag is 2 (sql/serde.cc, independent of the
  // ValueType enum).
  ASSERT_EQ(encoded[14], 2);
  encoded[14] = static_cast<char>(0xFD);
  WriteSet decoded;
  size_t pos = 0;
  EXPECT_EQ(storage::DecodeWriteSet(encoded, &pos, &decoded).code(),
            StatusCode::kInvalidArgument);
}

// --- WriteSetMessage / DdlMessage -------------------------------------

TEST(MessageSerdeTest, WriteSetMessageRoundTrips) {
  WriteSetMessage msg;
  msg.gid = GlobalTxnId{3, 41};
  msg.cert = 17;
  msg.ws = std::make_shared<const WriteSet>(SampleWriteSet());

  std::string encoded;
  middleware::EncodeWriteSetMessage(msg, &encoded);
  WriteSetMessage decoded;
  ASSERT_TRUE(middleware::DecodeWriteSetMessage(encoded, &decoded).ok());
  EXPECT_EQ(decoded.gid, msg.gid);
  EXPECT_EQ(decoded.cert, 17u);
  ASSERT_NE(decoded.ws, nullptr);
  ExpectWriteSetsEqual(*msg.ws, *decoded.ws);
}

TEST(MessageSerdeTest, WriteSetMessageWithNullWriteSetRoundTrips) {
  WriteSetMessage msg;
  msg.gid = GlobalTxnId{1, 1};
  std::string encoded;
  middleware::EncodeWriteSetMessage(msg, &encoded);
  WriteSetMessage decoded;
  ASSERT_TRUE(middleware::DecodeWriteSetMessage(encoded, &decoded).ok());
  ASSERT_NE(decoded.ws, nullptr);
  EXPECT_TRUE(decoded.ws->empty());
}

TEST(MessageSerdeTest, WriteSetMessageTruncationAndTrailingBytesFail) {
  WriteSetMessage msg;
  msg.gid = GlobalTxnId{2, 7};
  msg.cert = 5;
  msg.ws = std::make_shared<const WriteSet>(SampleWriteSet());
  std::string encoded;
  middleware::EncodeWriteSetMessage(msg, &encoded);

  for (size_t len = 0; len < encoded.size(); ++len) {
    WriteSetMessage decoded;
    EXPECT_EQ(
        middleware::DecodeWriteSetMessage(encoded.substr(0, len), &decoded)
            .code(),
        StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
  WriteSetMessage decoded;
  EXPECT_EQ(middleware::DecodeWriteSetMessage(encoded + "x", &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(MessageSerdeTest, DdlMessageRoundTrips) {
  DdlMessage msg;
  msg.gid = GlobalTxnId{9, 1000};
  msg.sql = "CREATE TABLE t (id INT PRIMARY KEY, name STRING)";
  std::string encoded;
  middleware::EncodeDdlMessage(msg, &encoded);
  DdlMessage decoded;
  ASSERT_TRUE(middleware::DecodeDdlMessage(encoded, &decoded).ok());
  EXPECT_EQ(decoded.gid, msg.gid);
  EXPECT_EQ(decoded.sql, msg.sql);
}

TEST(MessageSerdeTest, DdlMessageTruncationFails) {
  DdlMessage msg;
  msg.gid = GlobalTxnId{1, 2};
  msg.sql = "CREATE INDEX i ON t (name)";
  std::string encoded;
  middleware::EncodeDdlMessage(msg, &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    DdlMessage decoded;
    EXPECT_EQ(
        middleware::DecodeDdlMessage(encoded.substr(0, len), &decoded).code(),
        StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
}

// --- TraceContext propagation (wire version 2) -------------------------

obs::TraceContext SampleTrace() {
  obs::TraceContext ctx;
  ctx.trace_id = 0x123456789AULL;
  ctx.origin_replica = 3;
  ctx.origin_mono_ns = 111222333444ULL;
  ctx.origin_wall_ns = 1700000000123456789ULL;
  return ctx;
}

TEST(MessageSerdeTest, WriteSetMessageTraceContextRoundTrips) {
  WriteSetMessage msg;
  msg.gid = GlobalTxnId{3, 41};
  msg.cert = 17;
  msg.ws = std::make_shared<const WriteSet>(SampleWriteSet());
  msg.trace = SampleTrace();

  std::string encoded;
  middleware::EncodeWriteSetMessage(msg, &encoded);
  WriteSetMessage decoded;
  ASSERT_TRUE(middleware::DecodeWriteSetMessage(encoded, &decoded).ok());
  EXPECT_EQ(decoded.trace, msg.trace);
  EXPECT_TRUE(decoded.trace.valid());
}

TEST(MessageSerdeTest, WriteSetMessageWithoutTraceStaysEmpty) {
  WriteSetMessage msg;
  msg.gid = GlobalTxnId{1, 2};
  std::string encoded;
  middleware::EncodeWriteSetMessage(msg, &encoded);
  WriteSetMessage decoded;
  decoded.trace = SampleTrace();  // prove decode resets the context
  ASSERT_TRUE(middleware::DecodeWriteSetMessage(encoded, &decoded).ok());
  EXPECT_FALSE(decoded.trace.valid());
}

TEST(MessageSerdeTest, Version1WriteSetMessageDecodesWithEmptyTrace) {
  // Hand-build the version-1 layout (no trace fields): a frame from a
  // replica running the previous wire format must keep decoding.
  std::string v1;
  v1.push_back(1);
  sql::EncodeU32(3, &v1);   // gid.replica
  sql::EncodeU64(41, &v1);  // gid.seq
  sql::EncodeU64(17, &v1);  // cert
  storage::EncodeWriteSet(SampleWriteSet(), &v1);

  WriteSetMessage decoded;
  decoded.trace = SampleTrace();
  ASSERT_TRUE(middleware::DecodeWriteSetMessage(v1, &decoded).ok());
  EXPECT_EQ(decoded.gid, (GlobalTxnId{3, 41}));
  EXPECT_EQ(decoded.cert, 17u);
  EXPECT_FALSE(decoded.trace.valid());
  ASSERT_NE(decoded.ws, nullptr);
  ExpectWriteSetsEqual(SampleWriteSet(), *decoded.ws);
}

// --- GCS batch frames --------------------------------------------------

gcs::WireFrame SampleFrame() {
  gcs::WireFrame frame;
  frame.sender = 4;
  gcs::WireEntry ws;
  ws.type = "writeset";
  ws.enqueue_ns = 123456789;
  middleware::WriteSetMessage msg;
  msg.gid = GlobalTxnId{4, 10};
  msg.ws = std::make_shared<const WriteSet>(SampleWriteSet());
  middleware::EncodeWriteSetMessage(msg, &ws.payload);
  gcs::WireEntry stashed;
  stashed.type = "recovery";
  stashed.stash_id = 42;  // payload parked in-process, nothing on the wire
  stashed.enqueue_ns = 123456790;
  gcs::WireEntry ddl;
  ddl.type = "ddl";
  ddl.enqueue_ns = 123456791;
  middleware::DdlMessage dm;
  dm.gid = GlobalTxnId{4, 11};
  dm.sql = "CREATE TABLE x (id INT PRIMARY KEY)";
  middleware::EncodeDdlMessage(dm, &ddl.payload);
  frame.entries = {ws, stashed, ddl};
  return frame;
}

TEST(WireFrameTest, BatchFrameRoundTrips) {
  const gcs::WireFrame frame = SampleFrame();
  std::string encoded;
  gcs::EncodeWireFrame(frame, &encoded);
  gcs::WireFrame decoded;
  ASSERT_TRUE(gcs::DecodeWireFrame(encoded, &decoded).ok());
  EXPECT_EQ(decoded.sender, frame.sender);
  ASSERT_EQ(decoded.entries.size(), frame.entries.size());
  for (size_t i = 0; i < frame.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].type, frame.entries[i].type);
    EXPECT_EQ(decoded.entries[i].stash_id, frame.entries[i].stash_id);
    EXPECT_EQ(decoded.entries[i].enqueue_ns, frame.entries[i].enqueue_ns);
    EXPECT_EQ(decoded.entries[i].payload, frame.entries[i].payload);
  }
}

TEST(WireFrameTest, EmptyFrameRoundTrips) {
  gcs::WireFrame frame;
  frame.sender = 0;
  std::string encoded;
  gcs::EncodeWireFrame(frame, &encoded);
  gcs::WireFrame decoded;
  ASSERT_TRUE(gcs::DecodeWireFrame(encoded, &decoded).ok());
  EXPECT_TRUE(decoded.entries.empty());
}

TEST(WireFrameTest, EveryTruncationFailsCleanly) {
  std::string encoded;
  gcs::EncodeWireFrame(SampleFrame(), &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    gcs::WireFrame decoded;
    EXPECT_EQ(gcs::DecodeWireFrame(encoded.substr(0, len), &decoded).code(),
              StatusCode::kInvalidArgument)
        << "prefix length " << len;
  }
}

TEST(WireFrameTest, EntryTraceContextRoundTrips) {
  gcs::WireFrame frame = SampleFrame();
  frame.entries[0].trace = SampleTrace();

  std::string encoded;
  gcs::EncodeWireFrame(frame, &encoded);
  gcs::WireFrame decoded;
  ASSERT_TRUE(gcs::DecodeWireFrame(encoded, &decoded).ok());
  ASSERT_EQ(decoded.entries.size(), frame.entries.size());
  EXPECT_EQ(decoded.entries[0].trace, SampleTrace());
  EXPECT_FALSE(decoded.entries[1].trace.valid());
  EXPECT_FALSE(decoded.entries[2].trace.valid());
}

TEST(WireFrameTest, Version1FrameDecodesWithEmptyTrace) {
  // Hand-build a version-1 frame (entries carry no trace fields).
  std::string v1;
  sql::EncodeU32(gcs::kWireMagic, &v1);
  v1.push_back(1);  // version
  v1.push_back(0);  // flags
  sql::EncodeU32(7, &v1);  // sender
  sql::EncodeU32(1, &v1);  // entry count
  sql::EncodeString("writeset", &v1);
  sql::EncodeU64(42, &v1);      // stash_id
  sql::EncodeU64(123456, &v1);  // enqueue_ns
  sql::EncodeString("payload-bytes", &v1);

  gcs::WireFrame decoded;
  ASSERT_TRUE(gcs::DecodeWireFrame(v1, &decoded).ok());
  EXPECT_EQ(decoded.sender, 7u);
  ASSERT_EQ(decoded.entries.size(), 1u);
  EXPECT_EQ(decoded.entries[0].type, "writeset");
  EXPECT_EQ(decoded.entries[0].stash_id, 42u);
  EXPECT_EQ(decoded.entries[0].enqueue_ns, 123456u);
  EXPECT_FALSE(decoded.entries[0].trace.valid());
  EXPECT_EQ(decoded.entries[0].payload, "payload-bytes");
}

TEST(WireFrameTest, RejectsCorruptHeader) {
  std::string good;
  gcs::EncodeWireFrame(SampleFrame(), &good);

  {  // bad magic
    std::string bad = good;
    bad[0] = static_cast<char>(bad[0] ^ 0x01);
    gcs::WireFrame decoded;
    EXPECT_EQ(gcs::DecodeWireFrame(bad, &decoded).code(),
              StatusCode::kInvalidArgument);
  }
  {  // unknown version (offset 4)
    std::string bad = good;
    bad[4] = static_cast<char>(0xEE);
    gcs::WireFrame decoded;
    EXPECT_EQ(gcs::DecodeWireFrame(bad, &decoded).code(),
              StatusCode::kInvalidArgument);
  }
  {  // reserved flags must be zero (offset 5; bit 0 is claimed by
     // version 3 as the header-only variant, so probe the next bit)
    std::string bad = good;
    bad[5] = 0x02;
    gcs::WireFrame decoded;
    EXPECT_EQ(gcs::DecodeWireFrame(bad, &decoded).code(),
              StatusCode::kInvalidArgument);
  }
  {  // flags bit 0 is valid on version-3 frames: header-only variant
    std::string variant = good;
    variant[5] = 0x01;
    gcs::WireFrame decoded;
    ASSERT_TRUE(gcs::DecodeWireFrame(variant, &decoded).ok());
    EXPECT_TRUE(decoded.header_variant);
  }
  {  // entry count larger than the buffer can hold (offsets 10..13)
    std::string bad = good;
    for (size_t i = 10; i <= 13; ++i) bad[i] = static_cast<char>(0xFF);
    gcs::WireFrame decoded;
    EXPECT_EQ(gcs::DecodeWireFrame(bad, &decoded).code(),
              StatusCode::kInvalidArgument);
  }
  {  // trailing garbage
    gcs::WireFrame decoded;
    EXPECT_EQ(gcs::DecodeWireFrame(good + "zz", &decoded).code(),
              StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace sirep
