// Tests for load-aware replica selection (the paper's conclusion lists
// load balancing as ongoing work).

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace sirep {
namespace {

using client::BalancePolicy;
using client::ConnectionOptions;
using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

std::unique_ptr<Cluster> MakeCluster(size_t n) {
  ClusterOptions options;
  options.num_replicas = n;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  EXPECT_TRUE(cluster->ExecuteEverywhere("INSERT INTO kv VALUES (1, 0)").ok());
  return cluster;
}

TEST(LoadBalanceTest, CurrentLoadTracksActiveTxns) {
  auto cluster = MakeCluster(2);
  auto* mw = cluster->replica(0);
  EXPECT_EQ(mw->CurrentLoad(), 0u);

  auto t1 = std::move(mw->BeginTxn()).value();
  auto t2 = std::move(mw->BeginTxn()).value();
  EXPECT_EQ(mw->CurrentLoad(), 2u);

  ASSERT_TRUE(mw->RollbackTxn(t1).ok());
  EXPECT_EQ(mw->CurrentLoad(), 1u);
  ASSERT_TRUE(mw->CommitTxn(t2).ok());
  EXPECT_EQ(mw->CurrentLoad(), 0u);
}

TEST(LoadBalanceTest, CommitFailurePathsAlsoReleaseLoad) {
  auto cluster = MakeCluster(2);
  auto* m0 = cluster->replica(0);
  auto* m1 = cluster->replica(1);

  // Create a validation conflict so one commit fails.
  auto t0 = std::move(m0->BeginTxn()).value();
  auto t1 = std::move(m1->BeginTxn()).value();
  ASSERT_TRUE(m0->Execute(t0, "UPDATE kv SET v = 1 WHERE k = 1").ok());
  ASSERT_TRUE(m1->Execute(t1, "UPDATE kv SET v = 2 WHERE k = 1").ok());
  Status s0 = m0->CommitTxn(t0);
  Status s1 = m1->CommitTxn(t1);
  EXPECT_NE(s0.ok(), s1.ok());
  cluster->Quiesce();
  EXPECT_EQ(m0->CurrentLoad(), 0u);
  EXPECT_EQ(m1->CurrentLoad(), 0u);
}

TEST(LoadBalanceTest, LeastLoadedPicksIdleReplica) {
  auto cluster = MakeCluster(3);
  // Load replicas 0 and 1 with open transactions.
  auto b0 = std::move(cluster->replica(0)->BeginTxn()).value();
  auto b0b = std::move(cluster->replica(0)->BeginTxn()).value();
  auto b1 = std::move(cluster->replica(1)->BeginTxn()).value();

  ConnectionOptions copt;
  copt.balance = BalancePolicy::kLeastLoaded;
  for (int i = 0; i < 5; ++i) {
    copt.seed = 100 + i;
    auto conn = std::move(cluster->Connect(copt)).value();
    EXPECT_EQ(conn->replica(), cluster->replica(2)) << "attempt " << i;
  }
  cluster->replica(0)->RollbackTxn(b0);
  cluster->replica(0)->RollbackTxn(b0b);
  cluster->replica(1)->RollbackTxn(b1);
}

TEST(LoadBalanceTest, RandomPolicySpreadsConnections) {
  auto cluster = MakeCluster(3);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 60; ++i) {
    ConnectionOptions copt;
    copt.seed = i + 1;
    auto conn = std::move(cluster->Connect(copt)).value();
    for (size_t r = 0; r < 3; ++r) {
      if (conn->replica() == cluster->replica(r)) ++counts[r];
    }
  }
  for (int c : counts) EXPECT_GT(c, 5);  // nobody starved
}

TEST(LoadBalanceTest, LeastLoadedStillExcludesCrashed) {
  auto cluster = MakeCluster(3);
  cluster->CrashReplica(2);  // idle but dead
  ConnectionOptions copt;
  copt.balance = BalancePolicy::kLeastLoaded;
  auto conn = std::move(cluster->Connect(copt)).value();
  EXPECT_NE(conn->replica(), cluster->replica(2));
  EXPECT_TRUE(conn->replica()->IsAlive());
}

}  // namespace
}  // namespace sirep
