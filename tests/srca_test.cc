// Integration tests for the centralized SRCA middleware (paper Fig. 1),
// including the paper's Fig. 2 abort scenario and the §4.2 hidden
// deadlock demonstration.

#include "middleware/srca.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "engine/database.h"

namespace sirep::middleware {
namespace {

using sql::Value;

class SrcaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) {
      dbs_.push_back(std::make_unique<engine::Database>(
          "r" + std::to_string(i)));
      auto r = dbs_.back()->ExecuteAutoCommit(
          "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))");
      ASSERT_TRUE(r.ok());
      for (int k = 0; k < 10; ++k) {
        ASSERT_TRUE(dbs_.back()
                        ->ExecuteAutoCommit(
                            "INSERT INTO kv VALUES (?, 0)",
                            {Value::Int(k)})
                        .ok());
      }
    }
    std::vector<engine::Database*> ptrs;
    for (auto& db : dbs_) ptrs.push_back(db.get());
    srca_ = std::make_unique<SrcaMiddleware>(ptrs);
  }

  int64_t ReadAt(size_t replica, int64_t k) {
    auto r = dbs_[replica]->ExecuteAutoCommit(
        "SELECT v FROM kv WHERE k = ?", {Value::Int(k)});
    EXPECT_TRUE(r.ok());
    return r.value().rows[0][0].AsInt();
  }

  std::vector<std::unique_ptr<engine::Database>> dbs_;
  std::unique_ptr<SrcaMiddleware> srca_;
};

TEST_F(SrcaTest, UpdatePropagatesToAllReplicas) {
  auto txn = srca_->Begin(0);
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  ASSERT_TRUE(
      srca_->Execute(handle, "UPDATE kv SET v = 42 WHERE k = 1").ok());
  ASSERT_TRUE(srca_->Commit(handle).ok());

  // The local commit returns to the client immediately (hybrid
  // propagation); remote replicas apply lazily — wait a moment.
  for (int spin = 0; spin < 100; ++spin) {
    if (ReadAt(1, 1) == 42 && ReadAt(2, 1) == 42) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ReadAt(0, 1), 42);
  EXPECT_EQ(ReadAt(1, 1), 42);
  EXPECT_EQ(ReadAt(2, 1), 42);
  EXPECT_EQ(srca_->stats().committed, 1u);
}

TEST_F(SrcaTest, ReadOnlyCommitsLocallyOnly) {
  auto txn = srca_->Begin(1);
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  auto r = srca_->Execute(handle, "SELECT v FROM kv WHERE k = 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 0);
  ASSERT_TRUE(srca_->Commit(handle).ok());
  EXPECT_EQ(srca_->stats().empty_ws_commits, 1u);
}

TEST_F(SrcaTest, Fig2AbortScenario) {
  // Paper Fig. 2: T1 local at R1 updates x; T3 local at R2 updates x too,
  // starting before T1's writeset reaches R2. T3 must fail validation.
  auto t1 = srca_->Begin(0);
  ASSERT_TRUE(t1.ok());
  auto h1 = std::move(t1).value();

  auto t3 = srca_->Begin(1);  // starts while T1 in flight, concurrent
  ASSERT_TRUE(t3.ok());
  auto h3 = std::move(t3).value();

  ASSERT_TRUE(srca_->Execute(h1, "UPDATE kv SET v = 1 WHERE k = 5").ok());
  ASSERT_TRUE(srca_->Execute(h3, "UPDATE kv SET v = 3 WHERE k = 5").ok());

  ASSERT_TRUE(srca_->Commit(h1).ok());
  Status st = srca_->Commit(h3);
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  EXPECT_EQ(srca_->stats().validation_aborts, 1u);

  // T2 of the figure: concurrent reader writing a different object
  // commits fine.
  auto t2 = srca_->Begin(1);
  ASSERT_TRUE(t2.ok());
  auto h2 = std::move(t2).value();
  ASSERT_TRUE(srca_->Execute(h2, "SELECT v FROM kv WHERE k = 5").ok());
  ASSERT_TRUE(srca_->Execute(h2, "UPDATE kv SET v = 2 WHERE k = 6").ok());
  EXPECT_TRUE(srca_->Commit(h2).ok());
}

TEST_F(SrcaTest, NonConflictingConcurrentTxnsBothCommit) {
  auto t1 = srca_->Begin(0);
  auto t2 = srca_->Begin(1);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto h1 = std::move(t1).value();
  auto h2 = std::move(t2).value();
  ASSERT_TRUE(srca_->Execute(h1, "UPDATE kv SET v = 1 WHERE k = 1").ok());
  ASSERT_TRUE(srca_->Execute(h2, "UPDATE kv SET v = 2 WHERE k = 2").ok());
  EXPECT_TRUE(srca_->Commit(h1).ok());
  EXPECT_TRUE(srca_->Commit(h2).ok());
}

TEST_F(SrcaTest, RollbackLeavesNoTrace) {
  auto txn = srca_->Begin(0);
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  ASSERT_TRUE(srca_->Execute(handle, "UPDATE kv SET v = 9 WHERE k = 1").ok());
  ASSERT_TRUE(srca_->Rollback(handle).ok());
  EXPECT_EQ(ReadAt(0, 1), 0);
}

TEST_F(SrcaTest, ManyClientsConverge) {
  constexpr int kClients = 6;
  constexpr int kTxns = 20;
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kTxns; ++i) {
        auto txn = srca_->Begin(static_cast<size_t>(c) % 3);
        if (!txn.ok()) continue;
        auto handle = std::move(txn).value();
        const int64_t k = (c * kTxns + i) % 10;
        if (!srca_
                 ->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = ?",
                           {Value::Int(k)})
                 .ok()) {
          srca_->Rollback(handle);
          continue;
        }
        if (srca_->Commit(handle).ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_GT(committed.load(), 0);

  // Wait until all queues drain (poll for convergence), then all
  // replicas must agree and the total equals the committed count.
  int64_t sum0 = 0;
  for (int spin = 0; spin < 1000; ++spin) {
    sum0 = 0;
    for (int k = 0; k < 10; ++k) sum0 += ReadAt(0, k);
    int64_t sum2 = 0;
    for (int k = 0; k < 10; ++k) sum2 += ReadAt(2, k);
    if (sum0 == committed.load() && sum2 == committed.load()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(sum0, committed.load());
  for (size_t r = 1; r < 3; ++r) {
    for (int k = 0; k < 10; ++k) {
      EXPECT_EQ(ReadAt(r, k), ReadAt(0, k)) << "replica " << r << " k " << k;
    }
  }
}

// The §4.2 "hidden deadlock": with strictly serial writeset application,
// a cycle spans the middleware queue and the database lock table. SRCA
// cannot make progress; this test demonstrates the stall (and that the
// paper's Adjustment 2 — implemented in SrcaRepReplica — is necessary).
TEST_F(SrcaTest, HiddenDeadlockDemonstration) {
  // Local transactions Ti (holds x=k7) and Tj (holds y=k8) at replica 0.
  auto ti = srca_->Begin(0);
  auto tj = srca_->Begin(0);
  ASSERT_TRUE(ti.ok());
  ASSERT_TRUE(tj.ok());
  auto hi = std::move(ti).value();
  auto hj = std::move(tj).value();
  ASSERT_TRUE(srca_->Execute(hi, "UPDATE kv SET v = 1 WHERE k = 7").ok());
  ASSERT_TRUE(srca_->Execute(hj, "UPDATE kv SET v = 1 WHERE k = 8").ok());

  // Remote transaction Tr (local at replica 1) writes y=k8: its writeset
  // application at replica 0 blocks on Tj's lock.
  auto tr = srca_->Begin(1);
  ASSERT_TRUE(tr.ok());
  auto hr = std::move(tr).value();
  ASSERT_TRUE(srca_->Execute(hr, "UPDATE kv SET v = 2 WHERE k = 8").ok());
  ASSERT_TRUE(srca_->Commit(hr).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Ti validates fine (no conflict with Tr), but its commit is queued
  // behind Tr at replica 0 — and Tr waits for Tj's lock.
  std::atomic<bool> ti_committed{false};
  std::thread committer([&] {
    if (srca_->Commit(hi).ok()) ti_committed.store(true);
  });

  // Tj now requests x (held by Ti): the DB sees Tj->Ti; the middleware
  // queue has Ti waiting behind Tr which waits for Tj. Hidden deadlock —
  // nothing progresses.
  std::atomic<bool> tj_done{false};
  std::thread victim([&] {
    auto r = srca_->Execute(hj, "UPDATE kv SET v = 2 WHERE k = 7");
    (void)r;
    tj_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(ti_committed.load()) << "hidden deadlock should stall Ti";

  // Resolve manually (the client gives up on Tj), which unblocks the
  // whole chain: Tj aborts -> Tr applies -> Ti commits.
  srca_->Rollback(hj);
  committer.join();
  victim.join();
  EXPECT_TRUE(ti_committed.load());
}

}  // namespace
}  // namespace sirep::middleware
