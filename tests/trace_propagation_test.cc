// Cross-replica distributed tracing (ISSUE 5 tentpole): the origin
// replica stamps every multicast writeset with a TraceContext, both
// transports carry it verbatim, and remote replicas record their share
// of the commit path (delivery skew, global validation, apply, remote
// apply lag, snapshot staleness) under the *originating* transaction's
// trace id. Exercised over the in-process and the TCP sequencer
// transports.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "gcs/group.h"
#include "middleware/messages.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sirep {
namespace {

// ---- GCS layer: the context crosses the wire verbatim -----------------

/// Captures the trace context attached to every delivered message.
class TraceCapture : public gcs::GroupListener {
 public:
  void OnDeliver(const gcs::Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    traces_.push_back(message.trace);
  }
  void OnViewChange(const gcs::View&) override {}

  std::vector<obs::TraceContext> traces() const {
    std::lock_guard<std::mutex> lock(mu_);
    return traces_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<obs::TraceContext> traces_;
};

obs::TraceContext MakeContext() {
  obs::TraceContext ctx;
  ctx.trace_id = (static_cast<uint64_t>(2) + 1) << 40 | 99;
  ctx.origin_replica = 2;
  ctx.origin_mono_ns = obs::MonotonicNanos();
  ctx.origin_wall_ns = obs::TraceContext::WallNanos();
  return ctx;
}

void MulticastCarriesContext(gcs::TransportKind kind) {
  gcs::GroupOptions options;
  options.transport = kind;
  gcs::Group group(options);
  middleware::RegisterMessageCodecs(&group);
  TraceCapture a;
  TraceCapture b;
  const auto sender = group.Join(&a);
  group.Join(&b);
  group.WaitForQuiescence();

  const obs::TraceContext ctx = MakeContext();
  // A payload without a codec (stash path) and one with a codec
  // (byte-shipping path): the frame-level context must survive both.
  ASSERT_TRUE(
      group.Multicast(sender, "m", std::make_shared<const int>(7), ctx)
          .ok());
  auto msg = std::make_shared<middleware::WriteSetMessage>();
  msg->gid = middleware::GlobalTxnId{2, 99};
  msg->trace = ctx;
  ASSERT_TRUE(group
                  .Multicast(sender, middleware::kWriteSetMessageType,
                             std::move(msg), ctx)
                  .ok());
  group.WaitForQuiescence();

  for (const TraceCapture* capture : {&a, &b}) {
    const auto traces = capture->traces();
    ASSERT_EQ(traces.size(), 2u);
    for (const auto& received : traces) {
      EXPECT_EQ(received, ctx);  // including the origin's trace id
    }
  }
  group.Shutdown();
}

TEST(TracePropagationTest, InProcessMulticastCarriesOriginContext) {
  MulticastCarriesContext(gcs::TransportKind::kInProcess);
}

TEST(TracePropagationTest, TcpMulticastCarriesOriginContext) {
  MulticastCarriesContext(gcs::TransportKind::kTcp);
}

// ---- middleware layer: remote replicas record the origin's spans ------

uint64_t StageCount(const obs::MetricsSnapshot& snap, obs::Stage stage) {
  const auto it = snap.histograms.find(obs::StageMetricName(stage));
  return it == snap.histograms.end() ? 0 : it->second.count;
}

void RemoteSpansRecordedUnderOriginTrace(gcs::TransportKind kind) {
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  options.gcs.transport = kind;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(cluster.ExecuteEverywhere("INSERT INTO t VALUES (1, 0)").ok());

  constexpr uint64_t kTxns = 3;
  auto* origin = cluster.replica(0);
  for (uint64_t i = 0; i < kTxns; ++i) {
    auto handle = std::move(origin->BeginTxn()).value();
    ASSERT_TRUE(
        origin->Execute(handle, "UPDATE t SET v = v + 1 WHERE k = 1").ok());
    ASSERT_TRUE(origin->CommitTxn(handle).ok());
  }
  cluster.Quiesce();

  // The remote replica recorded the cross-replica stages. Those
  // histograms are only fed through a remote-side TxnTrace created from
  // a valid received TraceContext, so nonzero counts prove the spans
  // were recorded under the origin's trace id.
  const auto remote = cluster.replica(1)->metrics().Snapshot();
  EXPECT_GE(StageCount(remote, obs::Stage::kDeliverySkew), kTxns);
  EXPECT_GE(StageCount(remote, obs::Stage::kGlobalValidate), kTxns);
  EXPECT_GE(StageCount(remote, obs::Stage::kApply), kTxns);
  EXPECT_GE(StageCount(remote, obs::Stage::kRemoteApplyLag), kTxns);
  EXPECT_GE(StageCount(remote, obs::Stage::kSnapshotStaleness), kTxns);
  // ... and published a clock-offset estimate for skew correction.
  EXPECT_TRUE(remote.gauges.count("mw.clock.offset_estimate_ns"));

  // The origin's share: execute-through-commit plus its wait in the
  // sequencer queue; it records no remote-side spans for its own txns.
  const auto local = cluster.replica(0)->metrics().Snapshot();
  EXPECT_GE(StageCount(local, obs::Stage::kExecute), kTxns);
  EXPECT_GE(StageCount(local, obs::Stage::kMulticast), kTxns);
  EXPECT_GE(StageCount(local, obs::Stage::kCommit), kTxns);
  EXPECT_EQ(StageCount(local, obs::Stage::kDeliverySkew), 0u);
  EXPECT_EQ(StageCount(local, obs::Stage::kRemoteApplyLag), 0u);

  // Merged across the cluster, fig7's breakdown now shows the
  // cross-replica stages alongside the local ones.
  const std::string breakdown =
      cluster::Cluster::FormatCommitBreakdown(cluster.DumpMetrics());
  EXPECT_NE(breakdown.find("cross-replica"), std::string::npos);
  EXPECT_NE(breakdown.find("delivery_skew"), std::string::npos);
  EXPECT_NE(breakdown.find("p99"), std::string::npos);
}

TEST(TracePropagationTest, InProcessRemoteSpansUnderOriginTrace) {
  RemoteSpansRecordedUnderOriginTrace(gcs::TransportKind::kInProcess);
}

TEST(TracePropagationTest, TcpRemoteSpansUnderOriginTrace) {
  RemoteSpansRecordedUnderOriginTrace(gcs::TransportKind::kTcp);
}

// ---- CI metric-name lint: sweep every name a live cluster registers ---

TEST(MetricNameLintTest, EveryRegisteredNameFollowsConvention) {
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  auto* mw = cluster.replica(0);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "INSERT INTO t VALUES (1, 1)").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());
  cluster.Quiesce();

  const obs::MetricsSnapshot snap = cluster.DumpMetrics();
  EXPECT_FALSE(snap.counters.empty());
  for (const auto& [name, unused] : snap.counters) {
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
  }
  for (const auto& [name, unused] : snap.gauges) {
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
  }
  for (const auto& [name, unused] : snap.histograms) {
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
  }
}

}  // namespace
}  // namespace sirep
