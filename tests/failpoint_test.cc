// Tests for the deterministic failpoint subsystem (common/failpoint.h):
// spec parsing, verdict kinds, self-disarm counts, list/env arming, and
// — the load-bearing property for the chaos harness — seed determinism:
// re-running any probabilistic schedule with the same seed reproduces
// the identical fault sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"

namespace sirep {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedPointsAreFree) {
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(failpoint::Eval("nope").fired);
  EXPECT_TRUE(failpoint::EvalStatus("nope").ok());
}

TEST_F(FailpointTest, ErrorSpecFiresEveryTime) {
  ASSERT_TRUE(failpoint::Arm("p.err", "error").ok());
  EXPECT_TRUE(failpoint::AnyArmed());
  for (int i = 0; i < 3; ++i) {
    const Status st = failpoint::EvalStatus("p.err");
    EXPECT_EQ(st.code(), StatusCode::kInternal) << st;
  }
  EXPECT_EQ(failpoint::Hits("p.err"), 3u);
  EXPECT_EQ(failpoint::Fires("p.err"), 3u);
}

TEST_F(FailpointTest, ErrorCodeSpecs) {
  ASSERT_TRUE(failpoint::Arm("p.unavail", "error(unavailable)").ok());
  ASSERT_TRUE(failpoint::Arm("p.timeout", "error(timedout)").ok());
  ASSERT_TRUE(failpoint::Arm("p.deadlock", "error(deadlock)").ok());
  EXPECT_EQ(failpoint::EvalStatus("p.unavail").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(failpoint::EvalStatus("p.timeout").code(), StatusCode::kTimedOut);
  EXPECT_EQ(failpoint::EvalStatus("p.deadlock").code(),
            StatusCode::kDeadlock);
}

TEST_F(FailpointTest, CrashVerdictReachesCaller) {
  ASSERT_TRUE(failpoint::Arm("p.crash", "crash").ok());
  const auto hit = failpoint::Eval("p.crash");
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.kind, failpoint::Hit::Kind::kCrash);
  // Collapsed to a Status it reads as the crashed component's callers
  // would see it.
  EXPECT_EQ(hit.ToStatus("p.crash").code(), StatusCode::kUnavailable);
}

TEST_F(FailpointTest, ArgVerdictCarriesArgument) {
  ASSERT_TRUE(failpoint::Arm("p.arg", "arg(6)").ok());
  const auto hit = failpoint::Eval("p.arg");
  EXPECT_TRUE(hit.fired);
  EXPECT_EQ(hit.kind, failpoint::Hit::Kind::kArg);
  EXPECT_EQ(hit.arg, 6);
  // kArg maps to OK as a Status: the call site must use Eval().
  EXPECT_TRUE(hit.ToStatus("p.arg").ok());
}

TEST_F(FailpointTest, DelayCountsButDoesNotFire) {
  ASSERT_TRUE(failpoint::Arm("p.delay", "delay(1us)").ok());
  const auto hit = failpoint::Eval("p.delay");
  EXPECT_FALSE(hit.fired);
  EXPECT_EQ(failpoint::Hits("p.delay"), 1u);
}

TEST_F(FailpointTest, CountSuffixSelfDisarms) {
  ASSERT_TRUE(failpoint::Arm("p.once", "error(unavailable)*2").ok());
  EXPECT_FALSE(failpoint::EvalStatus("p.once").ok());
  EXPECT_FALSE(failpoint::EvalStatus("p.once").ok());
  // Third evaluation: the point disarmed itself.
  EXPECT_TRUE(failpoint::EvalStatus("p.once").ok());
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, OffDisarms) {
  ASSERT_TRUE(failpoint::Arm("p.off", "error").ok());
  ASSERT_TRUE(failpoint::Arm("p.off", "off").ok());
  EXPECT_TRUE(failpoint::EvalStatus("p.off").ok());
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, ListArmsMultiplePoints) {
  ASSERT_TRUE(
      failpoint::ArmFromList("a=error(conflict);b=arg(3)*1; c = delay(1us)")
          .ok());
  EXPECT_EQ(failpoint::EvalStatus("a").code(), StatusCode::kConflict);
  EXPECT_EQ(failpoint::Eval("b").arg, 3);
  EXPECT_FALSE(failpoint::Eval("c").fired);
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_FALSE(failpoint::Arm("bad", "explode").ok());
  EXPECT_FALSE(failpoint::Arm("bad", "error(nosuchcode)").ok());
  EXPECT_FALSE(failpoint::Arm("bad", "delay(5)").ok());   // missing unit
  EXPECT_FALSE(failpoint::Arm("bad", "1in(0)").ok());     // n must be >= 1
  EXPECT_FALSE(failpoint::Arm("bad", "error*0").ok());    // zero count
  EXPECT_FALSE(failpoint::ArmFromList("nospec").ok());
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint fp("p.scoped", "error");
    EXPECT_FALSE(failpoint::EvalStatus("p.scoped").ok());
  }
  EXPECT_TRUE(failpoint::EvalStatus("p.scoped").ok());
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST_F(FailpointTest, SnapshotReportsCounters) {
  ASSERT_TRUE(failpoint::Arm("p.snap", "1in(2)").ok());
  for (int i = 0; i < 10; ++i) failpoint::Eval("p.snap");
  bool found = false;
  for (const auto& stats : failpoint::Snapshot()) {
    if (stats.name != "p.snap") continue;
    found = true;
    EXPECT_EQ(stats.hits, 10u);
    EXPECT_EQ(stats.fires, failpoint::Fires("p.snap"));
    EXPECT_EQ(stats.spec, "1in(2)");
  }
  EXPECT_TRUE(found);
}

// The acceptance criterion: re-running a probabilistic schedule with the
// same seed reproduces the identical fault sequence.
TEST_F(FailpointTest, SameSeedReproducesIdenticalFirePattern) {
  const auto run = [](uint64_t seed) {
    failpoint::Seed(seed);
    EXPECT_TRUE(failpoint::Arm("p.a", "1in(3)").ok());
    EXPECT_TRUE(failpoint::Arm("p.b", "1in(5,error(unavailable))").ok());
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(failpoint::Eval("p.a").fired);
      pattern.push_back(failpoint::Eval("p.b").fired);
    }
    failpoint::DisarmAll();
    return pattern;
  };
  const auto first = run(0xC0FFEE);
  const auto second = run(0xC0FFEE);
  EXPECT_EQ(first, second);
  // ... and a different seed gives a different schedule (with 400 draws
  // the probability of a coincidental match is negligible).
  const auto other = run(0xBEEF);
  EXPECT_NE(first, other);
}

// Per-point PRNG independence: a point's verdict sequence depends only
// on (seed, name, evaluation index), not on what other points were
// armed or evaluated in between — the property that makes multi-threaded
// chaos schedules replayable per point.
TEST_F(FailpointTest, PointSequencesAreIndependent) {
  const auto draws_of_a = [](uint64_t seed, bool also_run_b) {
    failpoint::Seed(seed);
    EXPECT_TRUE(failpoint::Arm("p.a", "1in(4)").ok());
    EXPECT_TRUE(failpoint::Arm("p.b", "1in(4)").ok());
    std::vector<bool> pattern;
    for (int i = 0; i < 100; ++i) {
      pattern.push_back(failpoint::Eval("p.a").fired);
      if (also_run_b) {
        failpoint::Eval("p.b");
        failpoint::Eval("p.b");
      }
    }
    failpoint::DisarmAll();
    return pattern;
  };
  EXPECT_EQ(draws_of_a(42, false), draws_of_a(42, true));
}

TEST_F(FailpointTest, OneInNFiresAtRoughlyTheConfiguredRate) {
  failpoint::Seed(7);
  ASSERT_TRUE(failpoint::Arm("p.rate", "1in(4)").ok());
  int fires = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (failpoint::Eval("p.rate").fired) ++fires;
  }
  // Expected 1000; allow a generous window (binomial sd ~= 27).
  EXPECT_GT(fires, 800);
  EXPECT_LT(fires, 1200);
}

// Regression: with SIREP_FAILPOINTS set, the registry's lazy env arming
// runs inside a call_once at first use — which once self-deadlocked by
// re-entering the registry accessor from the arming code. The
// "threadsafe" death-test style re-execs the binary, so the child's
// FIRST registry use happens with the variable set, exactly the
// production path of an env-armed binary.
TEST(FailpointEnvDeathTest, EnvArmingAtFirstUseDoesNotDeadlock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_EQ(setenv("SIREP_FAILPOINTS", "env.point=error(unavailable)", 1),
            0);
  EXPECT_EXIT(
      {
        const Status st = failpoint::EvalStatus("env.point");
        std::_Exit(st.code() == StatusCode::kUnavailable ? 0 : 1);
      },
      ::testing::ExitedWithCode(0), "");
  unsetenv("SIREP_FAILPOINTS");
}

}  // namespace
}  // namespace sirep
