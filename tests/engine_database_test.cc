// End-to-end SQL tests against a single Database, plus Session semantics
// (autocommit, implicit begin, rollback on failure).

#include "engine/database.h"

#include <gtest/gtest.h>

#include "engine/session.h"

namespace sirep::engine {
namespace {

using sql::Value;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE acct (id INT, owner VARCHAR(20), bal DOUBLE, "
         "branch INT, PRIMARY KEY (id))");
    Must("INSERT INTO acct VALUES (1, 'alice', 100.0, 1)");
    Must("INSERT INTO acct VALUES (2, 'bob', 200.0, 1)");
    Must("INSERT INTO acct VALUES (3, 'carol', 300.0, 2)");
    Must("INSERT INTO acct VALUES (4, 'dave', 400.0, 2)");
  }

  QueryResult Must(const std::string& sql,
                   const std::vector<Value>& params = {}) {
    auto result = db_.ExecuteAutoCommit(sql, params);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(DatabaseTest, SelectStar) {
  auto r = Must("SELECT * FROM acct");
  EXPECT_EQ(r.NumRows(), 4u);
  ASSERT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns[0], "id");
}

TEST_F(DatabaseTest, SelectProjectionAndFilter) {
  auto r = Must("SELECT owner, bal FROM acct WHERE branch = 2");
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "carol");
}

TEST_F(DatabaseTest, PointLookupByKey) {
  auto r = Must("SELECT bal FROM acct WHERE id = 2");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 200.0);
}

TEST_F(DatabaseTest, OrderByAndLimit) {
  auto r = Must("SELECT id FROM acct ORDER BY bal DESC LIMIT 2");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(DatabaseTest, Aggregates) {
  auto r = Must(
      "SELECT COUNT(*), SUM(bal), AVG(bal), MIN(bal), MAX(bal) FROM acct");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 250.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 100.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 400.0);
}

TEST_F(DatabaseTest, AggregatesOnEmptySet) {
  auto r = Must("SELECT COUNT(*), SUM(bal) FROM acct WHERE id = 99");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(DatabaseTest, UpdateWithExpression) {
  auto r = Must("UPDATE acct SET bal = bal + 50.0 WHERE branch = 1");
  EXPECT_EQ(r.rows_affected, 2);
  auto check = Must("SELECT bal FROM acct WHERE id = 1");
  EXPECT_DOUBLE_EQ(check.rows[0][0].AsDouble(), 150.0);
}

TEST_F(DatabaseTest, UpdateByKeyAffectsOne) {
  auto r = Must("UPDATE acct SET owner = 'ALICE' WHERE id = 1");
  EXPECT_EQ(r.rows_affected, 1);
}

TEST_F(DatabaseTest, UpdateNoMatchAffectsZero) {
  auto r = Must("UPDATE acct SET bal = 0.0 WHERE id = 999");
  EXPECT_EQ(r.rows_affected, 0);
}

TEST_F(DatabaseTest, UpdatePrimaryKeyRejected) {
  auto result = db_.ExecuteAutoCommit("UPDATE acct SET id = 9 WHERE id = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST_F(DatabaseTest, DeleteWithPredicate) {
  auto r = Must("DELETE FROM acct WHERE bal >= 300.0");
  EXPECT_EQ(r.rows_affected, 2);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM acct").rows[0][0].AsInt(), 2);
}

TEST_F(DatabaseTest, InsertWithColumnListFillsNulls) {
  Must("INSERT INTO acct (id, owner) VALUES (9, 'eve')");
  auto r = Must("SELECT bal FROM acct WHERE id = 9");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(DatabaseTest, ParameterizedStatements) {
  Must("INSERT INTO acct VALUES (?, ?, ?, ?)",
       {Value::Int(10), Value::String("pat"), Value::Double(5.0),
        Value::Int(3)});
  auto r = Must("SELECT owner FROM acct WHERE id = ?", {Value::Int(10)});
  EXPECT_EQ(r.rows[0][0].AsString(), "pat");
}

TEST_F(DatabaseTest, TypeMismatchRejected) {
  auto result =
      db_.ExecuteAutoCommit("INSERT INTO acct VALUES ('x', 'y', 1.0, 1)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, UnknownTableAndColumnErrors) {
  EXPECT_EQ(db_.ExecuteAutoCommit("SELECT * FROM nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(db_.ExecuteAutoCommit("SELECT zz FROM acct").ok());
}

TEST_F(DatabaseTest, PreparedStatementsAreCached) {
  auto s1 = db_.Prepare("SELECT * FROM acct");
  auto s2 = db_.Prepare("SELECT * FROM acct");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.value().get(), s2.value().get());
}

TEST_F(DatabaseTest, TransactionControlRejectedAtDatabaseLevel) {
  auto txn = db_.Begin();
  EXPECT_FALSE(db_.Execute(txn, "COMMIT").ok());
  db_.Abort(txn);
}

TEST_F(DatabaseTest, MultiStatementTransactionAtomicity) {
  auto txn = db_.Begin();
  ASSERT_TRUE(
      db_.Execute(txn, "UPDATE acct SET bal = bal - 10.0 WHERE id = 1").ok());
  ASSERT_TRUE(
      db_.Execute(txn, "UPDATE acct SET bal = bal + 10.0 WHERE id = 2").ok());
  db_.Abort(txn);  // roll everything back
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 1").rows[0][0].AsDouble(), 100.0);
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 2").rows[0][0].AsDouble(), 200.0);
}

// ---- Session semantics ----

TEST_F(DatabaseTest, SessionAutocommit) {
  Session session(&db_);
  auto r = session.Execute("UPDATE acct SET bal = 0.0 WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(session.in_transaction());  // committed automatically
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 1").rows[0][0].AsDouble(), 0.0);
}

TEST_F(DatabaseTest, SessionExplicitTransaction) {
  Session session(&db_);
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("UPDATE acct SET bal = 1.0 WHERE id = 1").ok());
  EXPECT_TRUE(session.in_transaction());
  ASSERT_TRUE(session.Execute("ROLLBACK").ok());
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 1").rows[0][0].AsDouble(), 100.0);

  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("UPDATE acct SET bal = 2.0 WHERE id = 1").ok());
  ASSERT_TRUE(session.Execute("COMMIT").ok());
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 1").rows[0][0].AsDouble(), 2.0);
}

TEST_F(DatabaseTest, SessionImplicitBeginWithAutocommitOff) {
  Session session(&db_);
  session.SetAutoCommit(false);
  ASSERT_TRUE(session.Execute("UPDATE acct SET bal = 9.0 WHERE id = 1").ok());
  EXPECT_TRUE(session.in_transaction());  // JDBC-style implicit begin
  // Not yet visible to others.
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 1").rows[0][0].AsDouble(), 100.0);
  ASSERT_TRUE(session.Commit().ok());
  EXPECT_DOUBLE_EQ(
      Must("SELECT bal FROM acct WHERE id = 1").rows[0][0].AsDouble(), 9.0);
}

TEST_F(DatabaseTest, SessionDoubleBeginRejected) {
  Session session(&db_);
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  EXPECT_FALSE(session.Execute("BEGIN").ok());
}

TEST_F(DatabaseTest, SessionSeesConflictAsAbort) {
  Session s1(&db_), s2(&db_);
  ASSERT_TRUE(s1.Execute("BEGIN").ok());
  ASSERT_TRUE(s2.Execute("BEGIN").ok());
  ASSERT_TRUE(s1.Execute("UPDATE acct SET bal = 1.0 WHERE id = 1").ok());
  ASSERT_TRUE(s1.Execute("COMMIT").ok());
  auto r = s2.Execute("UPDATE acct SET bal = 2.0 WHERE id = 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConflict);
  EXPECT_FALSE(s2.in_transaction());  // aborted and forgotten
}

TEST_F(DatabaseTest, InPredicate) {
  auto r = Must("SELECT id FROM acct WHERE id IN (1, 3, 9) ORDER BY id");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
  auto none = Must("SELECT id FROM acct WHERE id NOT IN (1, 2, 3, 4)");
  EXPECT_EQ(none.NumRows(), 0u);
}

TEST_F(DatabaseTest, BetweenPredicate) {
  auto r = Must("SELECT id FROM acct WHERE bal BETWEEN 150.0 AND 350.0 "
                "ORDER BY id");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
  auto outside =
      Must("SELECT COUNT(*) FROM acct WHERE bal NOT BETWEEN 150.0 AND 350.0");
  EXPECT_EQ(outside.rows[0][0].AsInt(), 2);
}

TEST_F(DatabaseTest, LikePredicate) {
  auto r = Must("SELECT owner FROM acct WHERE owner LIKE 'c%'");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "carol");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM acct WHERE owner LIKE '%o%'")
                .rows[0][0]
                .AsInt(),
            2);  // bob, carol
  EXPECT_EQ(Must("SELECT COUNT(*) FROM acct WHERE owner LIKE '_ob'")
                .rows[0][0]
                .AsInt(),
            1);  // bob
  EXPECT_EQ(Must("SELECT COUNT(*) FROM acct WHERE owner NOT LIKE '%a%'")
                .rows[0][0]
                .AsInt(),
            1);  // bob
  EXPECT_EQ(Must("SELECT COUNT(*) FROM acct WHERE owner LIKE 'alice'")
                .rows[0][0]
                .AsInt(),
            1);  // no wildcards: exact match
  // LIKE on a non-string errors.
  EXPECT_FALSE(
      db_.ExecuteAutoCommit("SELECT * FROM acct WHERE bal LIKE 'x'").ok());
}

TEST_F(DatabaseTest, InWithParamsAndExpressions) {
  auto r = Must("SELECT id FROM acct WHERE id IN (?, ? + 1) ORDER BY id",
                {Value::Int(1), Value::Int(2)});
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

}  // namespace
}  // namespace sirep::engine
