// Integration tests for the decentralized SRCA-Rep middleware (paper
// Fig. 4) running over the full cluster: replication, validation aborts,
// the hidden-deadlock resolution of Adjustment 2, concurrency, and the
// SRCA-Opt mode.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/cluster.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using middleware::ReplicaMode;
using middleware::SrcaRepReplica;
using sql::Value;

std::unique_ptr<Cluster> MakeCluster(size_t n,
                                     ReplicaMode mode = ReplicaMode::kSrcaRep) {
  ClusterOptions options;
  options.num_replicas = n;
  options.replica.mode = mode;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 20; ++k) {
    EXPECT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                        {Value::Int(k)})
                    .ok());
  }
  return cluster;
}

int64_t ReadAt(Cluster& cluster, size_t replica, int64_t k) {
  auto r = cluster.db(replica)->ExecuteAutoCommit(
      "SELECT v FROM kv WHERE k = ?", {Value::Int(k)});
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().NumRows(), 1u);
  return r.value().rows[0][0].AsInt();
}

TEST(SrcaRepTest, UpdateReplicatesEverywhere) {
  auto cluster = MakeCluster(3);
  SrcaRepReplica* mw = cluster->replica(0);

  auto txn = mw->BeginTxn();
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  ASSERT_TRUE(
      mw->Execute(handle, "UPDATE kv SET v = 7 WHERE k = 3").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());

  cluster->Quiesce();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(ReadAt(*cluster, r, 3), 7) << "replica " << r;
  }
}

TEST(SrcaRepTest, ReadOnlyNeverMulticast) {
  auto cluster = MakeCluster(3);
  SrcaRepReplica* mw = cluster->replica(1);
  const uint64_t delivered_before = cluster->group().messages_delivered();

  auto txn = mw->BeginTxn();
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  auto r = mw->Execute(handle, "SELECT v FROM kv WHERE k = 1");
  ASSERT_TRUE(r.ok());
  bool had_writes = true;
  ASSERT_TRUE(mw->CommitTxn(handle, &had_writes).ok());
  EXPECT_FALSE(had_writes);

  cluster->Quiesce();
  EXPECT_EQ(cluster->group().messages_delivered(), delivered_before);
  EXPECT_EQ(mw->stats().empty_ws_commits, 1u);
}

TEST(SrcaRepTest, ConcurrentConflictOneAborts) {
  auto cluster = MakeCluster(2);
  SrcaRepReplica* m0 = cluster->replica(0);
  SrcaRepReplica* m1 = cluster->replica(1);

  auto t0 = m0->BeginTxn();
  auto t1 = m1->BeginTxn();
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  auto h0 = std::move(t0).value();
  auto h1 = std::move(t1).value();

  ASSERT_TRUE(m0->Execute(h0, "UPDATE kv SET v = 10 WHERE k = 5").ok());
  ASSERT_TRUE(m1->Execute(h1, "UPDATE kv SET v = 11 WHERE k = 5").ok());

  Status s0 = m0->CommitTxn(h0);
  Status s1 = m1->CommitTxn(h1);
  // Exactly one commits (total order decides which).
  EXPECT_NE(s0.ok(), s1.ok());
  cluster->Quiesce();
  const int64_t winner = s0.ok() ? 10 : 11;
  EXPECT_EQ(ReadAt(*cluster, 0, 5), winner);
  EXPECT_EQ(ReadAt(*cluster, 1, 5), winner);
}

TEST(SrcaRepTest, NonConflictingConcurrentCommitsBothSucceed) {
  auto cluster = MakeCluster(2);
  auto h0 = std::move(cluster->replica(0)->BeginTxn()).value();
  auto h1 = std::move(cluster->replica(1)->BeginTxn()).value();
  ASSERT_TRUE(cluster->replica(0)
                  ->Execute(h0, "UPDATE kv SET v = 1 WHERE k = 1")
                  .ok());
  ASSERT_TRUE(cluster->replica(1)
                  ->Execute(h1, "UPDATE kv SET v = 2 WHERE k = 2")
                  .ok());
  EXPECT_TRUE(cluster->replica(0)->CommitTxn(h0).ok());
  EXPECT_TRUE(cluster->replica(1)->CommitTxn(h1).ok());
  cluster->Quiesce();
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(ReadAt(*cluster, r, 1), 1);
    EXPECT_EQ(ReadAt(*cluster, r, 2), 2);
  }
}

TEST(SrcaRepTest, LocalValidationAbortsAgainstQueuedRemote) {
  // A transaction that conflicts with a remote writeset still sitting in
  // the local tocommit queue must fail *local* validation (Fig. 4 I.2.d).
  // We force the queue to be non-empty by holding a lock at replica 1 so
  // the remote apply blocks there.
  auto cluster = MakeCluster(2);
  SrcaRepReplica* m0 = cluster->replica(0);
  SrcaRepReplica* m1 = cluster->replica(1);

  // Blocker at replica 1 holds the lock on k=9.
  auto blocker = std::move(m1->BeginTxn()).value();
  ASSERT_TRUE(m1->Execute(blocker, "UPDATE kv SET v = 99 WHERE k = 9").ok());

  // Commit an update to k=9 at replica 0: it validates and commits
  // locally, and its remote apply at replica 1 blocks behind `blocker`.
  auto writer = std::move(m0->BeginTxn()).value();
  ASSERT_TRUE(m0->Execute(writer, "UPDATE kv SET v = 1 WHERE k = 9").ok());
  ASSERT_TRUE(m0->CommitTxn(writer).ok());
  // Give the writeset time to reach replica 1's queue.
  for (int i = 0; i < 200 && m1->PendingQueueSize() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(m1->PendingQueueSize(), 0u);

  // `blocker` now tries to commit: local validation sees the conflicting
  // queued remote writeset and aborts it.
  Status st = m1->CommitTxn(blocker);
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  EXPECT_GE(m1->stats().local_val_aborts, 1u);

  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 1, 9), 1);  // the remote apply went through
}

TEST(SrcaRepTest, HiddenDeadlockResolvedByImmediateLocalCommit) {
  // The §4.2 scenario that stalls SRCA forever: with Adjustment 2,
  // SRCA-Rep commits the validated local transaction immediately, which
  // breaks the cycle.
  auto cluster = MakeCluster(2);
  SrcaRepReplica* m0 = cluster->replica(0);
  SrcaRepReplica* m1 = cluster->replica(1);

  // Ti (local at 0) holds x=7; Tj (local at 0) holds y=8.
  auto ti = std::move(m0->BeginTxn()).value();
  auto tj = std::move(m0->BeginTxn()).value();
  ASSERT_TRUE(m0->Execute(ti, "UPDATE kv SET v = 1 WHERE k = 7").ok());
  ASSERT_TRUE(m0->Execute(tj, "UPDATE kv SET v = 1 WHERE k = 8").ok());

  // Tr (local at 1) writes y=8; its apply at replica 0 blocks on Tj.
  auto tr = std::move(m1->BeginTxn()).value();
  ASSERT_TRUE(m1->Execute(tr, "UPDATE kv SET v = 2 WHERE k = 8").ok());
  ASSERT_TRUE(m1->CommitTxn(tr).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Tj blocks on x=7 (held by Ti) inside the database.
  std::thread tj_thread([&] {
    auto r = m0->Execute(tj, "UPDATE kv SET v = 2 WHERE k = 7");
    // Tj becomes a deadlock victim or fails validation later; either way
    // it must not hang.
    if (!r.ok()) m0->RollbackTxn(tj);
  });

  // Ti commits: under SRCA this would stall (hidden deadlock); SRCA-Rep
  // must complete it promptly.
  Status st = m0->CommitTxn(ti);
  EXPECT_TRUE(st.ok()) << st;
  tj_thread.join();

  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 0, 7), 1);
  EXPECT_EQ(ReadAt(*cluster, 0, 8), 2);
  EXPECT_EQ(ReadAt(*cluster, 1, 8), 2);
}

TEST(SrcaRepTest, ManyClientsConvergeAcrossReplicas) {
  auto cluster = MakeCluster(3);
  constexpr int kClients = 6;
  constexpr int kTxns = 25;
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SrcaRepReplica* mw = cluster->replica(static_cast<size_t>(c) % 3);
      Prng prng(static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kTxns; ++i) {
        auto txn = mw->BeginTxn();
        if (!txn.ok()) continue;
        auto handle = std::move(txn).value();
        const int64_t k = static_cast<int64_t>(prng.Uniform(20));
        auto r = mw->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = ?",
                             {Value::Int(k)});
        if (!r.ok()) {
          mw->RollbackTxn(handle);
          continue;
        }
        if (mw->CommitTxn(handle).ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  cluster->Quiesce();

  int64_t sum0 = 0;
  for (int k = 0; k < 20; ++k) sum0 += ReadAt(*cluster, 0, k);
  EXPECT_EQ(sum0, committed.load());
  for (size_t r = 1; r < 3; ++r) {
    for (int k = 0; k < 20; ++k) {
      EXPECT_EQ(ReadAt(*cluster, r, k), ReadAt(*cluster, 0, k))
          << "replica " << r << " key " << k;
    }
  }
  auto stats = cluster->AggregateStats();
  EXPECT_EQ(stats.committed, static_cast<uint64_t>(committed.load()) * 3);
}

TEST(SrcaRepTest, SrcaOptModeAlsoConverges) {
  auto cluster = MakeCluster(3, ReplicaMode::kSrcaOpt);
  constexpr int kClients = 6;
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SrcaRepReplica* mw = cluster->replica(static_cast<size_t>(c) % 3);
      Prng prng(static_cast<uint64_t>(c) + 99);
      for (int i = 0; i < 25; ++i) {
        auto txn = mw->BeginTxn();
        if (!txn.ok()) continue;
        auto handle = std::move(txn).value();
        const int64_t k = static_cast<int64_t>(prng.Uniform(20));
        if (!mw->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = ?",
                         {Value::Int(k)})
                 .ok()) {
          mw->RollbackTxn(handle);
          continue;
        }
        if (mw->CommitTxn(handle).ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  cluster->Quiesce();
  // SRCA-Opt keeps write/write agreement (validation order still rules),
  // so replicas converge; only the global snapshot property is weakened.
  int64_t sum0 = 0;
  for (int k = 0; k < 20; ++k) sum0 += ReadAt(*cluster, 0, k);
  EXPECT_EQ(sum0, committed.load());
  for (size_t r = 1; r < 3; ++r) {
    for (int k = 0; k < 20; ++k) {
      EXPECT_EQ(ReadAt(*cluster, r, k), ReadAt(*cluster, 0, k));
    }
  }
  // SRCA-Opt never blocks starts.
  auto stats = cluster->AggregateStats();
  EXPECT_EQ(stats.holes.commits, stats.holes.commits);  // smoke
}

TEST(SrcaRepTest, RollbackDiscardsWrites) {
  auto cluster = MakeCluster(2);
  SrcaRepReplica* mw = cluster->replica(0);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE kv SET v = 5 WHERE k = 0").ok());
  ASSERT_TRUE(mw->RollbackTxn(handle).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadAt(*cluster, 0, 0), 0);
  EXPECT_EQ(ReadAt(*cluster, 1, 0), 0);
}

TEST(SrcaRepTest, InsertsAndDeletesReplicate) {
  auto cluster = MakeCluster(3);
  SrcaRepReplica* mw = cluster->replica(2);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(
      mw->Execute(handle, "INSERT INTO kv VALUES (100, 1)").ok());
  ASSERT_TRUE(mw->Execute(handle, "DELETE FROM kv WHERE k = 19").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());
  cluster->Quiesce();
  for (size_t r = 0; r < 3; ++r) {
    auto inserted = cluster->db(r)->ExecuteAutoCommit(
        "SELECT COUNT(*) FROM kv WHERE k = 100");
    EXPECT_EQ(inserted.value().rows[0][0].AsInt(), 1) << "replica " << r;
    auto deleted = cluster->db(r)->ExecuteAutoCommit(
        "SELECT COUNT(*) FROM kv WHERE k = 19");
    EXPECT_EQ(deleted.value().rows[0][0].AsInt(), 0) << "replica " << r;
  }
}

TEST(SrcaRepTest, StatsAccounting) {
  auto cluster = MakeCluster(2);
  SrcaRepReplica* mw = cluster->replica(0);
  for (int i = 0; i < 5; ++i) {
    auto handle = std::move(mw->BeginTxn()).value();
    ASSERT_TRUE(mw->Execute(handle, "UPDATE kv SET v = v + 1 WHERE k = 1")
                    .ok());
    ASSERT_TRUE(mw->CommitTxn(handle).ok());
  }
  cluster->Quiesce();
  auto s0 = cluster->replica(0)->stats();
  auto s1 = cluster->replica(1)->stats();
  EXPECT_EQ(s0.committed, 5u);   // local commits
  EXPECT_EQ(s1.committed, 5u);   // remote applies
  EXPECT_EQ(s0.holes.starts, 5u);
}

}  // namespace
}  // namespace sirep
