// Unit tests for the tuple lock manager: blocking, re-entrancy, deadlock
// detection, and poisoning.

#include "storage/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "sql/value.h"

namespace sirep::storage {
namespace {

TupleId T(const std::string& table, int64_t key) {
  return TupleId{table, sql::Key{{sql::Value::Int(key)}}};
}

TEST(LockManagerTest, AcquireAndRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  EXPECT_EQ(lm.HolderOf(T("t", 1)), 1u);
  EXPECT_EQ(lm.LocksHeld(1), 1u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HolderOf(T("t", 1)), kInvalidTxnId);
  EXPECT_EQ(lm.LocksHeld(1), 0u);
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  EXPECT_EQ(lm.LocksHeld(1), 1u);
}

TEST(LockManagerTest, DistinctTuplesDontConflict) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  ASSERT_TRUE(lm.Acquire(2, T("t", 2)).ok());
  ASSERT_TRUE(lm.Acquire(3, T("u", 1)).ok());  // same key, other table
}

TEST(LockManagerTest, WaiterBlocksUntilRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(lm.Acquire(2, T("t", 1)).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(lm.HolderOf(T("t", 1)), 2u);
}

TEST(LockManagerTest, DirectDeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  ASSERT_TRUE(lm.Acquire(2, T("t", 2)).ok());

  std::atomic<int> deadlocks{0};
  // txn 1 wants tuple 2 (blocks), txn 2 wants tuple 1 (closes the cycle).
  std::thread t1([&] {
    Status st = lm.Acquire(1, T("t", 2));
    if (st.code() == StatusCode::kDeadlock) deadlocks.fetch_add(1);
    if (!st.ok()) lm.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread t2([&] {
    Status st = lm.Acquire(2, T("t", 1));
    if (st.code() == StatusCode::kDeadlock) deadlocks.fetch_add(1);
    if (!st.ok()) lm.ReleaseAll(2);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(lm.deadlock_count(), 1u);
}

TEST(LockManagerTest, ThreeWayDeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  ASSERT_TRUE(lm.Acquire(2, T("t", 2)).ok());
  ASSERT_TRUE(lm.Acquire(3, T("t", 3)).ok());

  std::atomic<int> deadlocks{0};
  std::atomic<int> done{0};
  auto chase = [&](TxnId me, int64_t want) {
    Status st = lm.Acquire(me, T("t", want));
    if (st.code() == StatusCode::kDeadlock) deadlocks.fetch_add(1);
    lm.ReleaseAll(me);  // release so others unblock
    done.fetch_add(1);
  };
  std::thread a(chase, 1, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  std::thread b(chase, 2, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  std::thread c(chase, 3, 1);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(done.load(), 3);
  EXPECT_GE(deadlocks.load(), 1);
}

TEST(LockManagerTest, PoisonWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  std::atomic<bool> aborted{false};
  std::thread waiter([&] {
    Status st = lm.Acquire(2, T("t", 1));
    if (st.code() == StatusCode::kAborted) aborted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.Poison(2);
  waiter.join();
  EXPECT_TRUE(aborted.load());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  // After ReleaseAll the poison is cleared; txn id 2 could lock again.
  EXPECT_TRUE(lm.Acquire(2, T("t", 1)).ok());
}

TEST(LockManagerTest, ReleaseAllWakesAllWaiters) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, T("t", 1)).ok());
  std::atomic<int> got{0};
  std::vector<std::thread> waiters;
  for (TxnId id = 2; id <= 5; ++id) {
    waiters.emplace_back([&, id] {
      if (lm.Acquire(id, T("t", 1)).ok()) {
        got.fetch_add(1);
        lm.ReleaseAll(id);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.ReleaseAll(1);
  for (auto& w : waiters) w.join();
  EXPECT_EQ(got.load(), 4);
}

TEST(LockManagerTest, StressManyThreadsNoLostLocks) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> in_cs{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kIters; ++j) {
        const TxnId id = static_cast<TxnId>(i * kIters + j + 1);
        if (!lm.Acquire(id, T("hot", 0)).ok()) continue;
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        in_cs.fetch_sub(1);
        lm.ReleaseAll(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(lm.HolderOf(T("hot", 0)), kInvalidTxnId);
}

}  // namespace
}  // namespace sirep::storage
