// Unit suite for cluster::PartitionMap: deterministic tuple hashing,
// the contiguous-group holder model, payload-strip / covering-donor
// directory queries, epoch bumps on Resize, and the SIREP_PARTITIONS /
// SIREP_REPLICATION_FACTOR environment knobs.

#include "cluster/partition_map.h"

#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sql/value.h"
#include "storage/types.h"
#include "storage/write_set.h"

namespace sirep {
namespace {

using cluster::PartitionMap;

storage::TupleId Tuple(const std::string& table, int64_t key) {
  return {table, sql::Key{{sql::Value::Int(key)}}};
}

TEST(PartitionMapTest, TupleDigestIsDeterministicAndSeparatorSensitive) {
  const storage::TupleId a = Tuple("accounts", 7);
  // Same logical tuple, fresh objects: digests must be bit-identical —
  // this is the property that lets non-holders certify against shipped
  // digests and reach the same verdicts as holders hashing full tuples.
  EXPECT_EQ(PartitionMap::TupleDigest(a),
            PartitionMap::TupleDigest(Tuple("accounts", 7)));
  EXPECT_NE(PartitionMap::TupleDigest(a),
            PartitionMap::TupleDigest(Tuple("accounts", 8)));
  EXPECT_NE(PartitionMap::TupleDigest(a),
            PartitionMap::TupleDigest(Tuple("account", 7)));
  // Known value, pinned: FNV-1a 64 over "accounts" + 0x1f + Key{7}. A
  // change here silently breaks mixed-version clusters (digests are a
  // wire-level contract), so the constant is asserted, not derived.
  uint64_t expected = 1469598103934665603ull;
  auto mix = [&expected](const std::string& s) {
    for (unsigned char c : s) {
      expected ^= c;
      expected *= 1099511628211ull;
    }
  };
  mix("accounts");
  expected ^= 0x1f;
  expected *= 1099511628211ull;
  mix(sql::Key{{sql::Value::Int(7)}}.ToString());
  EXPECT_EQ(PartitionMap::TupleDigest(a), expected);
}

TEST(PartitionMapTest, DegenerateConfigsAreFullReplication) {
  // rf == 0 and rf >= num_slots both collapse to one group.
  for (size_t rf : {size_t{0}, size_t{4}, size_t{9}}) {
    PartitionMap map(/*num_slots=*/4, /*num_partitions=*/16, rf);
    EXPECT_FALSE(map.partial()) << "rf=" << rf;
    EXPECT_EQ(map.num_groups(), 1u);
    for (size_t slot = 0; slot < 4; ++slot) {
      EXPECT_EQ(map.HeldMask(slot), PartitionMap::FullMask(16));
    }
    EXPECT_EQ(map.StripMembers(0x3), 0u);
  }
}

TEST(PartitionMapTest, GroupModelPartitionsSlotsDisjointly) {
  // 5 slots, rf 2 -> 2 groups: {0,1} and {2,3,4} (last absorbs the
  // remainder). Every partition is held by exactly one group, and group
  // peers hold identical masks (the covering-donor property).
  PartitionMap map(/*num_slots=*/5, /*num_partitions=*/16,
                   /*replication_factor=*/2);
  ASSERT_TRUE(map.partial());
  ASSERT_EQ(map.num_groups(), 2u);
  EXPECT_EQ(map.GroupOfSlot(0), 0u);
  EXPECT_EQ(map.GroupOfSlot(1), 0u);
  EXPECT_EQ(map.GroupOfSlot(2), 1u);
  EXPECT_EQ(map.GroupOfSlot(4), 1u);
  EXPECT_EQ(map.HeldMask(0), map.HeldMask(1));
  EXPECT_EQ(map.HeldMask(2), map.HeldMask(3));
  EXPECT_EQ(map.HeldMask(2), map.HeldMask(4));
  // Disjoint and jointly exhaustive.
  EXPECT_EQ(map.HeldMask(0) & map.HeldMask(2), 0u);
  EXPECT_EQ(map.HeldMask(0) | map.HeldMask(2), PartitionMap::FullMask(16));
  // Every partition's group agrees with the holder masks.
  for (size_t p = 0; p < 16; ++p) {
    const size_t group = map.GroupOfPartition(p);
    const size_t holder_slot = group == 0 ? 0 : 2;
    const size_t other_slot = group == 0 ? 2 : 0;
    EXPECT_TRUE(map.Holds(holder_slot, p)) << "partition " << p;
    EXPECT_FALSE(map.Holds(other_slot, p)) << "partition " << p;
  }
  // Slots beyond the founding layout hold everything.
  EXPECT_EQ(map.HeldMask(7), PartitionMap::FullMask(16));
}

TEST(PartitionMapTest, MaskOfMatchesPerTupleDigests) {
  PartitionMap map(/*num_slots=*/4, /*num_partitions=*/8,
                   /*replication_factor=*/2);
  auto ws = std::make_shared<storage::WriteSet>();
  for (int64_t k = 0; k < 20; ++k) {
    ws->Record(Tuple("t", k), storage::WriteOp::kUpdate, sql::Row{});
  }
  std::vector<uint64_t> digests;
  const uint64_t mask = map.MaskOf(*ws, &digests);
  ASSERT_EQ(digests.size(), 20u);
  uint64_t rebuilt = 0;
  for (size_t i = 0; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i],
              PartitionMap::TupleDigest(ws->entries()[i].tuple));
    rebuilt |= uint64_t{1} << map.PartitionOfDigest(digests[i]);
  }
  EXPECT_EQ(mask, rebuilt);
  EXPECT_NE(mask, 0u);
  // HoldsAll/HoldsAny agree with the mask algebra.
  for (size_t slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(map.HoldsAll(slot, mask),
              (mask & ~map.HeldMask(slot)) == 0);
    EXPECT_EQ(map.HoldsAny(slot, mask),
              (mask & map.HeldMask(slot)) != 0);
  }
}

TEST(PartitionMapTest, ResizeBumpsEpochAndRemapsPartitions) {
  PartitionMap map(/*num_slots=*/4, /*num_partitions=*/16,
                   /*replication_factor=*/2);
  const uint64_t epoch0 = map.epoch();
  EXPECT_EQ(epoch0, 1u);
  map.Resize(32);
  EXPECT_EQ(map.epoch(), epoch0 + 1);
  EXPECT_EQ(map.num_partitions(), 32u);
  map.Resize(200);  // clamped to the 64-partition mask width
  EXPECT_EQ(map.epoch(), epoch0 + 2);
  EXPECT_EQ(map.num_partitions(), PartitionMap::kMaxPartitions);
}

TEST(PartitionMapTest, DirectoryStripsOnlyBoundNonHolders) {
  PartitionMap map(/*num_slots=*/4, /*num_partitions=*/16,
                   /*replication_factor=*/2);
  const uint64_t group0 = map.HeldMask(0);
  // Nobody bound yet: unknown members default to full payloads.
  EXPECT_EQ(map.StripMembers(group0), 0u);
  map.BindSlot(0, /*member=*/10);
  map.BindSlot(1, /*member=*/11);
  map.BindSlot(2, /*member=*/12);
  // Slot 3 stays unbound (a joiner mid-recovery): never stripped.
  EXPECT_EQ(map.StripMembers(group0), uint64_t{1} << 12);
  // A cross-group mask overlaps every group: nobody can be stripped.
  EXPECT_EQ(map.StripMembers(PartitionMap::FullMask(16)), 0u);
  // An empty mask strips nobody (empty writesets go everywhere).
  EXPECT_EQ(map.StripMembers(0), 0u);
  // Member ids beyond the mask width are never strippable.
  map.BindSlot(3, /*member=*/77);
  EXPECT_EQ(map.StripMembers(group0),
            (uint64_t{1} << 12));

  // Covering donors for group 0's mask are exactly group 0's bound
  // members; rebinding a slot to a new incarnation replaces the old.
  std::set<uint32_t> covering;
  for (uint32_t m : map.CoveringMembers(group0)) covering.insert(m);
  EXPECT_EQ(covering, (std::set<uint32_t>{10, 11}));
  map.UnbindMember(11);
  covering.clear();
  for (uint32_t m : map.CoveringMembers(group0)) covering.insert(m);
  EXPECT_EQ(covering, (std::set<uint32_t>{10}));
  map.BindSlot(1, /*member=*/21);  // restarted incarnation, new id
  EXPECT_EQ(map.SlotOfMember(21), std::optional<size_t>{1});
  EXPECT_EQ(map.MemberOfSlot(1), std::optional<uint32_t>{21});
  EXPECT_EQ(map.SlotOfMember(11), std::nullopt);
}

TEST(PartitionMapTest, FromEnvHonorsKnobsAndDefaults) {
  ::unsetenv("SIREP_PARTITIONS");
  ::unsetenv("SIREP_REPLICATION_FACTOR");
  EXPECT_EQ(PartitionMap::FromEnv(4), nullptr);

  ::setenv("SIREP_REPLICATION_FACTOR", "2", 1);
  auto map = PartitionMap::FromEnv(4);
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->num_partitions(), 16u);  // default partition count
  EXPECT_EQ(map->replication_factor(), 2u);
  EXPECT_TRUE(map->partial());

  ::setenv("SIREP_PARTITIONS", "8", 1);
  map = PartitionMap::FromEnv(6);
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->num_partitions(), 8u);
  EXPECT_EQ(map->num_groups(), 3u);

  ::unsetenv("SIREP_PARTITIONS");
  ::unsetenv("SIREP_REPLICATION_FACTOR");
}

}  // namespace
}  // namespace sirep
