// Unit tests for the common utilities: Status/Result, Prng/Zipf,
// SampleStats, and the synchronization primitives.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/prng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"

namespace sirep {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Conflict("tuple X");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  EXPECT_EQ(st.message(), "tuple X");
  EXPECT_EQ(st.ToString(), "Conflict: tuple X");
}

TEST(StatusTest, TransactionFailureClassification) {
  EXPECT_TRUE(Status::Aborted("x").IsTransactionFailure());
  EXPECT_TRUE(Status::Conflict("x").IsTransactionFailure());
  EXPECT_TRUE(Status::Deadlock("x").IsTransactionFailure());
  EXPECT_TRUE(Status::TransactionLost("x").IsTransactionFailure());
  EXPECT_FALSE(Status::NotFound("x").IsTransactionFailure());
  EXPECT_FALSE(Status::OK().IsTransactionFailure());
  EXPECT_FALSE(Status::Unavailable("x").IsTransactionFailure());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    SIREP_RETURN_IF_ERROR(fails());
    return Status::Internal("not reached");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(PrngTest, UniformInRange) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = prng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = prng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = prng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(PrngTest, ExponentialHasRequestedMean) {
  Prng prng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += prng.Exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Prng prng(3);
  ZipfGenerator zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(prng)];
  // Rank 0 should be sampled far more often than rank 50.
  EXPECT_GT(counts[0], counts[50] * 5);
  // Everything within range.
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Prng prng(4);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(prng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(SampleStatsTest, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_NEAR(s.Stddev(), std::sqrt(2.5), 1e-9);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(95), 95.05, 0.1);
}

TEST(SampleStatsTest, ConfidenceCriterion) {
  SampleStats narrow;
  for (int i = 0; i < 100; ++i) narrow.Add(10.0 + (i % 2) * 0.01);
  EXPECT_TRUE(narrow.ConfidentWithin(0.05));

  SampleStats wide;
  wide.Add(1.0);
  wide.Add(100.0);
  EXPECT_FALSE(wide.ConfidentWithin(0.05));
}

TEST(SampleStatsTest, MergeCombines) {
  SampleStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
}

TEST(WorkQueueTest, FifoOrder) {
  WorkQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(WorkQueueTest, CloseDrainsThenEnds) {
  WorkQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(WorkQueueTest, BlockingPopWakesOnPush) {
  WorkQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(99);
  });
  auto v = q.Pop();
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 99);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Semaphore sem(2);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      sem.Acquire();
      const int now = concurrent.fetch_add(1) + 1;
      int expected = max_seen.load();
      while (now > expected &&
             !max_seen.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
      sem.Release();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_seen.load(), 2);
}

TEST(SemaphoreTest, TryAcquire) {
  Semaphore sem(1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(CountDownLatchTest, ReleasesAtZero) {
  CountDownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown();
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(CountDownLatchTest, WaitForTimesOut) {
  CountDownLatch latch(1);
  EXPECT_FALSE(latch.WaitFor(std::chrono::milliseconds(10)));
  latch.CountDown();
  EXPECT_TRUE(latch.WaitFor(std::chrono::milliseconds(10)));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&] { done.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

}  // namespace
}  // namespace sirep
