// Tests for binary serialization (sql/serde) and the write-ahead log:
// round-trips, durability across a simulated process restart, torn-tail
// tolerance, and interaction with vacuum/indexes.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/database.h"
#include "sql/serde.h"
#include "storage/wal.h"

namespace sirep {
namespace {

using sql::Value;

std::string TempWalPath(const char* tag) {
  return std::string("/tmp/sirep_wal_test_") + tag + "_" +
         std::to_string(::getpid()) + ".wal";
}

// ---- serde ----

TEST(SerdeTest, ValueRoundTrips) {
  const Value values[] = {
      Value::Null(),           Value::Bool(true),
      Value::Bool(false),      Value::Int(0),
      Value::Int(-123456789),  Value::Int(INT64_MAX),
      Value::Double(3.25),     Value::Double(-0.0),
      Value::String(""),       Value::String("hello world"),
      Value::String(std::string(10000, 'x')),
  };
  for (const auto& v : values) {
    std::string buf;
    sql::EncodeValue(v, &buf);
    size_t pos = 0;
    Value decoded;
    ASSERT_TRUE(sql::DecodeValue(buf, &pos, &decoded).ok()) << v.ToString();
    EXPECT_EQ(pos, buf.size());
    EXPECT_EQ(decoded.type(), v.type());
    EXPECT_EQ(decoded.Compare(v), 0) << v.ToString();
  }
}

TEST(SerdeTest, RowRoundTrip) {
  sql::Row row = {Value::Int(1), Value::String("a"), Value::Null(),
                  Value::Double(2.5), Value::Bool(true)};
  std::string buf;
  sql::EncodeRow(row, &buf);
  size_t pos = 0;
  sql::Row decoded;
  ASSERT_TRUE(sql::DecodeRow(buf, &pos, &decoded).ok());
  EXPECT_EQ(decoded, row);
}

TEST(SerdeTest, TruncationDetected) {
  std::string buf;
  sql::EncodeValue(Value::String("hello"), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string partial = buf.substr(0, cut);
    size_t pos = 0;
    Value v;
    EXPECT_FALSE(sql::DecodeValue(partial, &pos, &v).ok()) << "cut " << cut;
  }
}

TEST(SerdeTest, UnknownTagRejected) {
  std::string buf = "\x7f";
  size_t pos = 0;
  Value v;
  EXPECT_FALSE(sql::DecodeValue(buf, &pos, &v).ok());
}

// ---- WAL ----

class WalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  void CreateSchema(engine::Database& db) {
    ASSERT_TRUE(db.ExecuteAutoCommit(
                      "CREATE TABLE kv (k INT, v VARCHAR(30), "
                      "PRIMARY KEY (k))")
                    .ok());
  }

  std::string path_;
};

TEST_F(WalTest, CommitsSurviveRestart) {
  path_ = TempWalPath("basic");
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.EnableWal(path_).ok());
    ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (1, 'one')").ok());
    ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (2, 'two')").ok());
    ASSERT_TRUE(
        db.ExecuteAutoCommit("UPDATE kv SET v = 'ONE' WHERE k = 1").ok());
    ASSERT_TRUE(db.ExecuteAutoCommit("DELETE FROM kv WHERE k = 2").ok());
    // Database object destroyed: the "process" dies.
  }
  engine::Database revived;
  CreateSchema(revived);
  ASSERT_TRUE(revived.RecoverFromWal(path_).ok());
  auto r = revived.ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().NumRows(), 1u);
  EXPECT_EQ(r.value().rows[0][1].AsString(), "ONE");
}

TEST_F(WalTest, ClockAdvancesPastRecoveredCommits) {
  path_ = TempWalPath("clock");
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.EnableWal(path_).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (?, 'x')",
                                       {Value::Int(i)})
                      .ok());
    }
  }
  engine::Database revived;
  CreateSchema(revived);
  ASSERT_TRUE(revived.RecoverFromWal(path_).ok());
  ASSERT_TRUE(revived.EnableWal(path_).ok());
  // New commits must not collide with recovered timestamps: snapshot
  // reads after new writes behave normally.
  ASSERT_TRUE(
      revived.ExecuteAutoCommit("UPDATE kv SET v = 'new' WHERE k = 0").ok());
  auto r = revived.ExecuteAutoCommit("SELECT v FROM kv WHERE k = 0");
  EXPECT_EQ(r.value().rows[0][0].AsString(), "new");
}

TEST_F(WalTest, TornTailIgnored) {
  path_ = TempWalPath("torn");
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.EnableWal(path_).ok());
    ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (1, 'ok')").ok());
    ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (2, 'ok')").ok());
  }
  // Simulate a crash mid-append: chop bytes off the tail.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_TRUE(::truncate(path_.c_str(), size - 5) == 0);
  }
  engine::Database revived;
  CreateSchema(revived);
  ASSERT_TRUE(revived.RecoverFromWal(path_).ok());
  // First record intact; the torn second record dropped.
  auto r = revived.ExecuteAutoCommit("SELECT COUNT(*) FROM kv");
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 1);
}

TEST_F(WalTest, ReplayWithoutSchemaFails) {
  path_ = TempWalPath("noschema");
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.EnableWal(path_).ok());
    ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (1, 'x')").ok());
  }
  engine::Database revived;  // no schema created
  EXPECT_EQ(revived.RecoverFromWal(path_).code(), StatusCode::kNotFound);
}

TEST_F(WalTest, MissingFileIsEmptyLog) {
  engine::Database db;
  CreateSchema(db);
  EXPECT_TRUE(db.RecoverFromWal("/tmp/sirep_definitely_missing.wal").ok());
}

TEST_F(WalTest, MultiStatementTransactionIsOneRecord) {
  path_ = TempWalPath("atomic");
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.EnableWal(path_).ok());
    auto txn = db.Begin();
    ASSERT_TRUE(db.Execute(txn, "INSERT INTO kv VALUES (1, 'a')").ok());
    ASSERT_TRUE(db.Execute(txn, "INSERT INTO kv VALUES (2, 'b')").ok());
    ASSERT_TRUE(db.Commit(txn).ok());
    // An aborted transaction leaves no record.
    auto doomed = db.Begin();
    ASSERT_TRUE(db.Execute(doomed, "INSERT INTO kv VALUES (3, 'c')").ok());
    db.Abort(doomed);
  }
  storage::Wal wal(path_);
  int records = 0;
  int entries = 0;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp, const storage::WriteSet& ws)
                             -> Status {
                   ++records;
                   entries += static_cast<int>(ws.size());
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(records, 1);
  EXPECT_EQ(entries, 2);
}

TEST_F(WalTest, TruncateEmptiesLog) {
  path_ = TempWalPath("trunc");
  storage::Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  storage::WriteSet ws;
  ws.Record({"kv", sql::Key{{Value::Int(1)}}}, storage::WriteOp::kInsert,
            {Value::Int(1), Value::String("x")});
  ASSERT_TRUE(wal.AppendCommit(1, ws).ok());
  ASSERT_TRUE(wal.Truncate().ok());
  int records = 0;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp, const storage::WriteSet&) {
                   ++records;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(records, 0);
  // Still appendable after truncation.
  ASSERT_TRUE(wal.AppendCommit(2, ws).ok());
}

// ---- WAL failpoints ----

storage::WriteSet OneRowWs(int k, const char* v) {
  storage::WriteSet ws;
  ws.Record({"kv", sql::Key{{Value::Int(k)}}}, storage::WriteOp::kInsert,
            {Value::Int(k), Value::String(v)});
  return ws;
}

// The acceptance-criterion torn-tail test: an injected torn append writes
// a real partial record to disk and wedges the log; reopening truncates
// the tail, keeps every earlier record, and accepts new appends.
TEST_F(WalTest, InjectedTornAppendWedgesThenRecoversOnReopen) {
  path_ = TempWalPath("torn_fp");
  storage::Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.AppendCommit(1, OneRowWs(1, "first")).ok());

  {
    // Keep only 6 bytes of the next record (enough for the magic plus a
    // sliver of the commit timestamp — unambiguously torn).
    failpoint::ScopedFailpoint fp("wal.append.torn", "arg(6)*1");
    const Status st = wal.AppendCommit(2, OneRowWs(2, "torn"));
    EXPECT_EQ(st.code(), StatusCode::kInternal) << st;
  }
  EXPECT_TRUE(wal.wedged());
  // The tail state is unknown: further appends must be refused, or a
  // valid record would land behind garbage and be unreadable forever.
  EXPECT_FALSE(wal.AppendCommit(3, OneRowWs(3, "refused")).ok());

  // "Process restart": reopen scans, truncates the torn tail, un-wedges.
  wal.Close();
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_FALSE(wal.wedged());
  ASSERT_TRUE(wal.AppendCommit(4, OneRowWs(4, "after")).ok());

  std::vector<storage::Timestamp> seen;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp ts, const storage::WriteSet&) {
                   seen.push_back(ts);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, (std::vector<storage::Timestamp>{1, 4}));
}

// Torn tail with the default cut (half the record) survives engine-level
// recovery: the committed prefix replays, the torn record is dropped.
TEST_F(WalTest, InjectedTornTailDroppedByEngineRecovery) {
  path_ = TempWalPath("torn_fp_engine");
  {
    storage::Wal wal(path_);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.AppendCommit(1, OneRowWs(1, "ok")).ok());
    failpoint::ScopedFailpoint fp("wal.append.torn", "arg(0)*1");  // half
    EXPECT_FALSE(wal.AppendCommit(2, OneRowWs(2, "torn")).ok());
  }
  engine::Database revived;
  CreateSchema(revived);
  ASSERT_TRUE(revived.RecoverFromWal(path_).ok());
  auto r = revived.ExecuteAutoCommit("SELECT COUNT(*) FROM kv");
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 1);
}

// An error injected *before* any bytes reach the file does not wedge:
// the tail is still well-formed, so the log stays usable.
TEST_F(WalTest, InjectedAppendErrorBeforeWriteDoesNotWedge) {
  path_ = TempWalPath("append_err");
  storage::Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  {
    failpoint::ScopedFailpoint fp("wal.append", "error(unavailable)*1");
    EXPECT_EQ(wal.AppendCommit(1, OneRowWs(1, "x")).code(),
              StatusCode::kUnavailable);
  }
  EXPECT_FALSE(wal.wedged());
  ASSERT_TRUE(wal.AppendCommit(2, OneRowWs(2, "y")).ok());
  int records = 0;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp, const storage::WriteSet&) {
                   ++records;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(records, 1);
}

// A failed flush *after* a complete record reports the error but leaves
// a well-formed tail: the record is replayable and appends continue.
TEST_F(WalTest, InjectedFsyncFailureLeavesCompleteRecord) {
  path_ = TempWalPath("fsync_err");
  storage::Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  {
    failpoint::ScopedFailpoint fp("wal.fsync", "error(unavailable)*1");
    EXPECT_FALSE(wal.AppendCommit(1, OneRowWs(1, "x")).ok());
  }
  EXPECT_FALSE(wal.wedged());
  ASSERT_TRUE(wal.AppendCommit(2, OneRowWs(2, "y")).ok());
  int records = 0;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp, const storage::WriteSet&) {
                   ++records;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(records, 2);
}

// ---- group commit ----

// Concurrent committers through the buffered path: every record must be
// durable and replayable, records stay in commit_ts order on disk, and
// the leader-elected flush must amortize at least some flushes (the
// group-size histogram sees groups; with this much concurrency at least
// one group > 1 is overwhelmingly likely, but we only assert counts).
TEST_F(WalTest, GroupCommitConcurrentCommittersAllDurable) {
  path_ = TempWalPath("group");
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 25;
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.EnableWal(path_, /*group_commit=*/true).ok());
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (?, 'seed')",
                                       {Value::Int(t)})
                      .ok());
    }
    std::vector<std::thread> committers;
    for (int t = 0; t < kThreads; ++t) {
      committers.emplace_back([&db, t] {
        for (int i = 0; i < kTxnsPerThread; ++i) {
          ASSERT_TRUE(db.ExecuteAutoCommit(
                            "UPDATE kv SET v = ? WHERE k = ?",
                            {Value::String("v" + std::to_string(i)),
                             Value::Int(t)})
                          .ok());
        }
      });
    }
    for (auto& c : committers) c.join();
    // Every commit waited for its flush, so the histogram covered all
    // of them by the time the last committer returned.
    auto snap = db.engine().metrics().Snapshot();
    auto it = snap.histograms.find("storage.wal_group_size");
    ASSERT_NE(it, snap.histograms.end());
    EXPECT_GT(it->second.count, 0u);
  }
  engine::Database revived;
  CreateSchema(revived);
  ASSERT_TRUE(revived.RecoverFromWal(path_).ok());
  auto r = revived.ExecuteAutoCommit("SELECT k, v FROM kv ORDER BY k");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().NumRows(), static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(r.value().rows[t][1].AsString(),
              "v" + std::to_string(kTxnsPerThread - 1));
  }
}

// A torn group flush wedges the log (tail unknown) and the waiting
// committer gets the error; Open() truncates the torn tail and recovers.
TEST_F(WalTest, GroupFlushTornWriteWedgesThenRecovers) {
  path_ = TempWalPath("group_torn");
  storage::Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  auto t1 = wal.AppendCommitBuffered(1, OneRowWs(1, "ok"));
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(wal.WaitDurable(t1.value()).ok());
  auto t2 = wal.AppendCommitBuffered(2, OneRowWs(2, "torn"));
  ASSERT_TRUE(t2.ok());
  {
    failpoint::ScopedFailpoint fp("wal.append.torn", "arg(0)*1");
    EXPECT_FALSE(wal.WaitDurable(t2.value()).ok());
  }
  EXPECT_TRUE(wal.wedged());
  EXPECT_FALSE(wal.AppendCommitBuffered(3, OneRowWs(3, "no")).ok());
  ASSERT_TRUE(wal.Open().ok());  // no-op: still open... reopen via Close
  wal.Close();
  ASSERT_TRUE(wal.Open().ok());  // truncates the torn tail
  EXPECT_FALSE(wal.wedged());
  auto t3 = wal.AppendCommitBuffered(3, OneRowWs(3, "yes"));
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(wal.WaitDurable(t3.value()).ok());
  int records = 0;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp, const storage::WriteSet&) {
                   ++records;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(records, 2);  // commit 1 and commit 3; the torn 2 is gone
}

// An injected pre-write error during a group flush must not wedge or
// lose the batch: it goes back to the pending buffer and the next flush
// (here: a later committer's WaitDurable) writes it.
TEST_F(WalTest, GroupFlushTransientErrorRetriesBatch) {
  path_ = TempWalPath("group_retry");
  storage::Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  auto t1 = wal.AppendCommitBuffered(1, OneRowWs(1, "x"));
  ASSERT_TRUE(t1.ok());
  {
    failpoint::ScopedFailpoint fp("wal.append", "error(unavailable)*1");
    EXPECT_EQ(wal.WaitDurable(t1.value()).code(), StatusCode::kUnavailable);
  }
  EXPECT_FALSE(wal.wedged());
  auto t2 = wal.AppendCommitBuffered(2, OneRowWs(2, "y"));
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(wal.WaitDurable(t2.value()).ok());  // flushes both records
  int records = 0;
  ASSERT_TRUE(wal.Replay([&](storage::Timestamp, const storage::WriteSet&) {
                   ++records;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(records, 2);
}

TEST_F(WalTest, InjectedOpenErrorIsRetryable) {
  path_ = TempWalPath("open_err");
  storage::Wal wal(path_);
  {
    failpoint::ScopedFailpoint fp("wal.open", "error(unavailable)*1");
    EXPECT_EQ(wal.Open().code(), StatusCode::kUnavailable);
  }
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.AppendCommit(1, OneRowWs(1, "x")).ok());
}

TEST_F(WalTest, WalPlusVacuumAndIndexes) {
  path_ = TempWalPath("mix");
  {
    engine::Database db;
    CreateSchema(db);
    ASSERT_TRUE(db.ExecuteAutoCommit("CREATE INDEX kv_v ON kv (v)").ok());
    ASSERT_TRUE(db.EnableWal(path_).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO kv VALUES (?, 'hot')",
                                       {Value::Int(i)})
                      .ok());
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          db.ExecuteAutoCommit("UPDATE kv SET v = 'cold' WHERE k = ?",
                               {Value::Int(i)})
              .ok());
    }
    db.engine().Vacuum();  // vacuum must not disturb the log
  }
  engine::Database revived;
  CreateSchema(revived);
  ASSERT_TRUE(revived.ExecuteAutoCommit("CREATE INDEX kv_v ON kv (v)").ok());
  ASSERT_TRUE(revived.RecoverFromWal(path_).ok());
  auto hot = revived.ExecuteAutoCommit("SELECT COUNT(*) FROM kv WHERE v = "
                                       "'hot'");
  EXPECT_EQ(hot.value().rows[0][0].AsInt(), 5);
  auto cold = revived.ExecuteAutoCommit(
      "SELECT COUNT(*) FROM kv WHERE v = 'cold'");
  EXPECT_EQ(cold.value().rows[0][0].AsInt(), 5);
}

}  // namespace
}  // namespace sirep
