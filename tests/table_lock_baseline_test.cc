// Tests for the table-level-locking baseline protocol of the paper's
// reference [20]: replication of declared transactions, read-only local
// execution, serialization of conflicting table accesses, convergence.

#include "middleware/table_lock_baseline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gcs/group.h"

namespace sirep::middleware {
namespace {

using sql::Value;

class TableLockBaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    group_ = std::make_unique<gcs::Group>();
    for (int i = 0; i < 3; ++i) {
      dbs_.push_back(
          std::make_unique<engine::Database>("r" + std::to_string(i)));
      ASSERT_TRUE(dbs_.back()
                      ->ExecuteAutoCommit(
                          "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                      .ok());
      for (int k = 0; k < 10; ++k) {
        ASSERT_TRUE(dbs_.back()
                        ->ExecuteAutoCommit("INSERT INTO kv VALUES (?, 0)",
                                            {Value::Int(k)})
                        .ok());
      }
      replicas_.push_back(std::make_unique<TableLockReplica>(
          dbs_.back().get(), group_.get()));
      ASSERT_TRUE(replicas_.back()->Start().ok());
    }
  }

  void TearDown() override {
    for (auto& r : replicas_) r->Shutdown();
    group_->Shutdown();
  }

  std::shared_ptr<DeclaredTxn> UpdateTxn(int64_t k, int64_t v) {
    auto txn = std::make_shared<DeclaredTxn>();
    txn->tables = {"kv"};
    txn->program = [k, v](engine::Database* db,
                          const storage::TransactionPtr& t) -> Status {
      auto r = db->Execute(t, "UPDATE kv SET v = ? WHERE k = ?",
                           {Value::Int(v), Value::Int(k)});
      return r.ok() ? Status::OK() : r.status();
    };
    return txn;
  }

  int64_t ReadAt(size_t replica, int64_t k) {
    auto r = dbs_[replica]->ExecuteAutoCommit("SELECT v FROM kv WHERE k = ?",
                                              {Value::Int(k)});
    EXPECT_TRUE(r.ok());
    return r.value().rows[0][0].AsInt();
  }

  void WaitConverged(int64_t k, int64_t expect) {
    for (int spin = 0; spin < 1000; ++spin) {
      if (ReadAt(0, k) == expect && ReadAt(1, k) == expect &&
          ReadAt(2, k) == expect) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  std::unique_ptr<gcs::Group> group_;
  std::vector<std::unique_ptr<engine::Database>> dbs_;
  std::vector<std::unique_ptr<TableLockReplica>> replicas_;
};

TEST_F(TableLockBaselineTest, UpdateReplicatesEverywhere) {
  ASSERT_TRUE(replicas_[0]->Submit(UpdateTxn(1, 42)).ok());
  WaitConverged(1, 42);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(ReadAt(r, 1), 42);
  EXPECT_EQ(replicas_[0]->stats().committed, 1u);
}

TEST_F(TableLockBaselineTest, ReadOnlyRunsLocallyWithoutMessages) {
  const uint64_t delivered = group_->messages_delivered();
  auto txn = std::make_shared<DeclaredTxn>();
  txn->tables = {"kv"};
  txn->read_only = true;
  int64_t seen = -1;
  txn->program = [&seen](engine::Database* db,
                         const storage::TransactionPtr& t) -> Status {
    auto r = db->Execute(t, "SELECT v FROM kv WHERE k = 0");
    if (!r.ok()) return r.status();
    seen = r.value().rows[0][0].AsInt();
    return Status::OK();
  };
  ASSERT_TRUE(replicas_[1]->Submit(txn).ok());
  EXPECT_EQ(seen, 0);
  group_->WaitForQuiescence();
  EXPECT_EQ(group_->messages_delivered(), delivered);
  EXPECT_EQ(replicas_[1]->stats().read_only, 1u);
}

TEST_F(TableLockBaselineTest, FailedProgramAbortsEverywhere) {
  auto txn = std::make_shared<DeclaredTxn>();
  txn->tables = {"kv"};
  txn->program = [](engine::Database* db,
                    const storage::TransactionPtr& t) -> Status {
    auto r = db->Execute(t, "UPDATE kv SET v = 1 WHERE k = 0");
    if (!r.ok()) return r.status();
    return Status::Aborted("business rule violated");
  };
  Status st = replicas_[0]->Submit(txn);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  group_->WaitForQuiescence();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(ReadAt(r, 0), 0);
}

TEST_F(TableLockBaselineTest, ConflictingUpdatesBothCommitSerialized) {
  // Table locks serialize them; both succeed (no optimistic aborts in
  // this protocol) and all replicas agree on a final value.
  std::atomic<int> ok{0};
  std::thread a([&] {
    if (replicas_[0]->Submit(UpdateTxn(5, 100)).ok()) ok.fetch_add(1);
  });
  std::thread b([&] {
    if (replicas_[1]->Submit(UpdateTxn(5, 200)).ok()) ok.fetch_add(1);
  });
  a.join();
  b.join();
  EXPECT_EQ(ok.load(), 2);
  group_->WaitForQuiescence();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int64_t final_value = ReadAt(0, 5);
  EXPECT_TRUE(final_value == 100 || final_value == 200);
  EXPECT_EQ(ReadAt(1, 5), final_value);
  EXPECT_EQ(ReadAt(2, 5), final_value);
}

TEST_F(TableLockBaselineTest, ManyClientsConverge) {
  constexpr int kClients = 5;
  constexpr int kTxns = 20;
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TableLockReplica* mw = replicas_[static_cast<size_t>(c) % 3].get();
      for (int i = 0; i < kTxns; ++i) {
        auto txn = std::make_shared<DeclaredTxn>();
        txn->tables = {"kv"};
        const int64_t k = (c + i) % 10;
        txn->program = [k](engine::Database* db,
                           const storage::TransactionPtr& t) -> Status {
          auto r = db->Execute(t, "UPDATE kv SET v = v + 1 WHERE k = ?",
                               {Value::Int(k)});
          return r.ok() ? Status::OK() : r.status();
        };
        if (mw->Submit(txn).ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(committed.load(), kClients * kTxns);

  // Converge and agree.
  group_->WaitForQuiescence();
  int64_t expect_sum = committed.load();
  // Delivery is quiesced but application is asynchronous per replica:
  // wait until every replica has caught up, not just one.
  for (int spin = 0; spin < 2000; ++spin) {
    bool converged = true;
    for (size_t r = 0; r < 3 && converged; ++r) {
      int64_t sum2 = 0;
      for (int k = 0; k < 10; ++k) sum2 += ReadAt(r, k);
      converged = sum2 == expect_sum;
    }
    if (converged) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (size_t r = 0; r < 3; ++r) {
    int64_t sum = 0;
    for (int k = 0; k < 10; ++k) sum += ReadAt(r, k);
    EXPECT_EQ(sum, expect_sum) << "replica " << r;
  }
}

TEST_F(TableLockBaselineTest, LockContentionIsTracked) {
  // All transactions touch the same single table, so concurrent
  // submissions make exclusive requests queue. One round of 4 txns can
  // (rarely) serialize by accident, so retry a bounded number of rounds
  // until contention shows up.
  uint64_t contended = 0;
  for (int round = 0; round < 50 && contended == 0; ++round) {
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back(
          [&, i] { replicas_[0]->Submit(UpdateTxn(i, i)).ok(); });
    }
    for (auto& t : threads) t.join();
    group_->WaitForQuiescence();
    contended = 0;
    for (auto& r : replicas_) contended += r->stats().contended_lock_requests;
  }
  EXPECT_GT(contended, 0u);
}

}  // namespace
}  // namespace sirep::middleware
