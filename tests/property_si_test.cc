// Property-based tests of the storage engine's snapshot isolation on a
// single node, parameterized over seeds and thread counts:
//  * conservation: concurrent transfers never create or destroy money;
//  * no lost updates: a counter's final value equals the commit count;
//  * snapshot atomicity: paired rows written together are always read
//    together (no fractured reads);
//  * write-skew IS allowed (SI, not serializability) — we document the
//    anomaly's reachability rather than its absence.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/prng.h"
#include "engine/database.h"

namespace sirep {
namespace {

using sql::Value;

struct PropertyParam {
  uint64_t seed;
  int threads;
  int txns_per_thread;
};

class SiPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(SiPropertyTest, TransfersConserveTotal) {
  const auto param = GetParam();
  engine::Database db;
  ASSERT_TRUE(db.ExecuteAutoCommit(
                    "CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))")
                  .ok());
  constexpr int kAccounts = 10;
  constexpr int64_t kInitial = 1000;
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO acct VALUES (?, ?)",
                                     {Value::Int(i), Value::Int(kInitial)})
                    .ok());
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&, t] {
      Prng prng(param.seed * 977 + t);
      for (int i = 0; i < param.txns_per_thread; ++i) {
        const int64_t from = static_cast<int64_t>(prng.Uniform(kAccounts));
        int64_t to = static_cast<int64_t>(prng.Uniform(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = 1 + static_cast<int64_t>(prng.Uniform(50));

        auto txn = db.Begin();
        auto r1 = db.Execute(txn, "SELECT bal FROM acct WHERE id = ?",
                             {Value::Int(from)});
        if (!r1.ok()) {
          db.Abort(txn);
          continue;
        }
        auto u1 = db.Execute(txn, "UPDATE acct SET bal = bal - ? WHERE id = ?",
                             {Value::Int(amount), Value::Int(from)});
        if (!u1.ok()) {
          db.Abort(txn);
          continue;
        }
        auto u2 = db.Execute(txn, "UPDATE acct SET bal = bal + ? WHERE id = ?",
                             {Value::Int(amount), Value::Int(to)});
        if (!u2.ok()) {
          db.Abort(txn);
          continue;
        }
        (void)db.Commit(txn);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto total = db.ExecuteAutoCommit("SELECT SUM(bal) FROM acct");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value().rows[0][0].AsInt(), kAccounts * kInitial);
}

TEST_P(SiPropertyTest, NoLostUpdates) {
  const auto param = GetParam();
  engine::Database db;
  ASSERT_TRUE(db.ExecuteAutoCommit(
                    "CREATE TABLE c (id INT, n INT, PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO c VALUES (1, 0)").ok());

  std::atomic<int64_t> commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < param.txns_per_thread; ++i) {
        auto txn = db.Begin();
        auto u = db.Execute(txn, "UPDATE c SET n = n + 1 WHERE id = 1");
        if (!u.ok()) {
          db.Abort(txn);
          continue;
        }
        if (db.Commit(txn).ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  auto n = db.ExecuteAutoCommit("SELECT n FROM c WHERE id = 1");
  EXPECT_EQ(n.value().rows[0][0].AsInt(), commits.load());
}

TEST_P(SiPropertyTest, NoFracturedReads) {
  const auto param = GetParam();
  engine::Database db;
  ASSERT_TRUE(db.ExecuteAutoCommit(
                    "CREATE TABLE pair (id INT, v INT, PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO pair VALUES (1, 0)").ok());
  ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO pair VALUES (2, 0)").ok());

  std::atomic<bool> stop{false};
  std::atomic<int> fractures{0};
  // Writers set both rows to the same token atomically.
  std::vector<std::thread> writers;
  for (int w = 0; w < std::max(1, param.threads / 2); ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < param.txns_per_thread; ++i) {
        const int64_t token = w * 1000000 + i + 1;
        auto txn = db.Begin();
        if (db.Execute(txn, "UPDATE pair SET v = ? WHERE id = 1",
                       {Value::Int(token)})
                .ok() &&
            db.Execute(txn, "UPDATE pair SET v = ? WHERE id = 2",
                       {Value::Int(token)})
                .ok()) {
          (void)db.Commit(txn);
        } else {
          db.Abort(txn);
        }
      }
    });
  }
  // Readers must never observe two different tokens.
  std::vector<std::thread> readers;
  for (int r = 0; r < std::max(1, param.threads / 2); ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn = db.Begin();
        auto r1 = db.Execute(txn, "SELECT v FROM pair WHERE id = 1");
        auto r2 = db.Execute(txn, "SELECT v FROM pair WHERE id = 2");
        db.Abort(txn);
        if (r1.ok() && r2.ok() &&
            r1.value().rows[0][0].AsInt() != r2.value().rows[0][0].AsInt()) {
          fractures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(fractures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SiPropertyTest,
    ::testing::Values(PropertyParam{1, 2, 100}, PropertyParam{2, 4, 60},
                      PropertyParam{3, 6, 40}, PropertyParam{42, 8, 30}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "x" +
             std::to_string(info.param.threads);
    });

// SI permits write skew (the classic anomaly serializability forbids):
// two transactions each read both rows and write different rows; both
// commit because their writesets don't intersect. This documents that we
// implement SI, not 1-copy-serializability.
TEST(SiAnomalyTest, WriteSkewIsPossible) {
  engine::Database db;
  ASSERT_TRUE(db.ExecuteAutoCommit(
                    "CREATE TABLE oncall (id INT, on_duty INT, "
                    "PRIMARY KEY (id))")
                  .ok());
  ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO oncall VALUES (1, 1)").ok());
  ASSERT_TRUE(db.ExecuteAutoCommit("INSERT INTO oncall VALUES (2, 1)").ok());

  // Invariant the application wants: at least one doctor on duty.
  auto t1 = db.Begin();
  auto t2 = db.Begin();
  // Both see two doctors on duty.
  auto c1 = db.Execute(t1, "SELECT SUM(on_duty) FROM oncall");
  auto c2 = db.Execute(t2, "SELECT SUM(on_duty) FROM oncall");
  ASSERT_EQ(c1.value().rows[0][0].AsInt(), 2);
  ASSERT_EQ(c2.value().rows[0][0].AsInt(), 2);
  // Each takes themselves off duty (disjoint writesets).
  ASSERT_TRUE(
      db.Execute(t1, "UPDATE oncall SET on_duty = 0 WHERE id = 1").ok());
  ASSERT_TRUE(
      db.Execute(t2, "UPDATE oncall SET on_duty = 0 WHERE id = 2").ok());
  EXPECT_TRUE(db.Commit(t1).ok());
  EXPECT_TRUE(db.Commit(t2).ok());  // SI lets this commit: write skew

  auto sum = db.ExecuteAutoCommit("SELECT SUM(on_duty) FROM oncall");
  EXPECT_EQ(sum.value().rows[0][0].AsInt(), 0);  // invariant broken — SI!
}

}  // namespace
}  // namespace sirep
