// Property-based 1-copy-SI tests (paper §2.2, Definition 3).
//
// The key observable: take two keys X and Y with independent writer
// streams (each update increments one key's version counter). Under
// 1-copy-SI every reader — at any replica — reads from a snapshot of one
// global SI schedule, so the set of observed (x_version, y_version) pairs
// must be totally ordered componentwise: observing (x=5, y=2) at one
// replica and (x=4, y=3) at another is impossible (paper §4.3.2 shows
// exactly this anomaly when commit order holes are not synchronized).
//
// We assert the staircase property holds for SRCA-Rep, plus randomized
// convergence (replicas end bit-identical) for both SRCA-Rep and
// SRCA-Opt.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using middleware::ReplicaMode;
using sql::Value;

std::unique_ptr<Cluster> MakeCluster(size_t n, ReplicaMode mode) {
  ClusterOptions options;
  options.num_replicas = n;
  options.replica.mode = mode;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  return cluster;
}

struct Observation {
  int64_t x, y;
};

void RunStaircaseWorkload(Cluster& cluster,
                          std::vector<Observation>* observations,
                          int writers_per_key, int txns_per_writer,
                          int readers, int reads_per_reader) {
  std::mutex obs_mu;
  std::vector<std::thread> threads;

  auto writer = [&](const char* key, int seed) {
    middleware::SrcaRepReplica* mw =
        cluster.replica(static_cast<size_t>(seed) % cluster.size());
    const std::string sql =
        std::string("UPDATE pair SET v = v + 1 WHERE k = '") + key + "'";
    for (int i = 0; i < txns_per_writer; ++i) {
      auto txn = mw->BeginTxn();
      if (!txn.ok()) continue;
      auto handle = std::move(txn).value();
      if (!mw->Execute(handle, sql).ok()) {
        mw->RollbackTxn(handle);
        continue;
      }
      (void)mw->CommitTxn(handle);
    }
  };
  auto reader = [&](int seed) {
    middleware::SrcaRepReplica* mw =
        cluster.replica(static_cast<size_t>(seed) % cluster.size());
    for (int i = 0; i < reads_per_reader; ++i) {
      auto txn = mw->BeginTxn();
      if (!txn.ok()) continue;
      auto handle = std::move(txn).value();
      auto rx = mw->Execute(handle, "SELECT v FROM pair WHERE k = 'x'");
      auto ry = mw->Execute(handle, "SELECT v FROM pair WHERE k = 'y'");
      (void)mw->CommitTxn(handle);
      if (rx.ok() && ry.ok() && rx.value().NumRows() == 1 &&
          ry.value().NumRows() == 1) {
        std::lock_guard<std::mutex> lock(obs_mu);
        observations->push_back({rx.value().rows[0][0].AsInt(),
                                 ry.value().rows[0][0].AsInt()});
      }
    }
  };

  for (int w = 0; w < writers_per_key; ++w) {
    threads.emplace_back(writer, "x", w);
    threads.emplace_back(writer, "y", w + 1);
  }
  for (int r = 0; r < readers; ++r) threads.emplace_back(reader, r);
  for (auto& t : threads) t.join();
}

bool IsStaircase(const std::vector<Observation>& obs, std::string* bad) {
  auto sorted = obs;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].y < sorted[i - 1].y && sorted[i].x > sorted[i - 1].x) {
      *bad = "(" + std::to_string(sorted[i - 1].x) + "," +
             std::to_string(sorted[i - 1].y) + ") vs (" +
             std::to_string(sorted[i].x) + "," +
             std::to_string(sorted[i].y) + ")";
      return false;
    }
  }
  return true;
}

TEST(OneCopySiTest, SnapshotStaircaseHoldsUnderSrcaRep) {
  auto cluster = MakeCluster(3, ReplicaMode::kSrcaRep);
  ASSERT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE pair (k VARCHAR(4), v INT, "
                      "PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(
      cluster->ExecuteEverywhere("INSERT INTO pair VALUES ('x', 0)").ok());
  ASSERT_TRUE(
      cluster->ExecuteEverywhere("INSERT INTO pair VALUES ('y', 0)").ok());

  std::vector<Observation> observations;
  RunStaircaseWorkload(*cluster, &observations, /*writers_per_key=*/2,
                       /*txns_per_writer=*/40, /*readers=*/4,
                       /*reads_per_reader=*/60);
  ASSERT_GT(observations.size(), 50u);
  std::string bad;
  EXPECT_TRUE(IsStaircase(observations, &bad))
      << "1-copy-SI violated: incomparable snapshots " << bad;
  cluster->Quiesce();
  // Drained-queue check, phrased order-independently: with a parallel
  // apply pipeline (SIREP_APPLY_THREADS > 1) entries leave the
  // ToCommitQueue in whatever order the workers commit them, so never
  // assert on intermediate depths or front tids — only that Quiesce
  // implies every validated writeset was applied and removed.
  for (size_t r = 0; r < cluster->size(); ++r) {
    EXPECT_EQ(cluster->replica(r)->PendingQueueSize(), 0u) << "replica " << r;
  }
  // Convergence too.
  auto v0 = cluster->db(0)->ExecuteAutoCommit("SELECT v FROM pair ORDER BY k");
  for (size_t r = 1; r < 3; ++r) {
    auto vr =
        cluster->db(r)->ExecuteAutoCommit("SELECT v FROM pair ORDER BY k");
    ASSERT_EQ(vr.value().rows.size(), v0.value().rows.size());
    for (size_t i = 0; i < vr.value().rows.size(); ++i) {
      EXPECT_EQ(vr.value().rows[i][0].AsInt(),
                v0.value().rows[i][0].AsInt());
    }
  }
}

// Randomized mixed workload (inserts, updates, deletes over two tables)
// run at every replica concurrently; afterwards all replicas must hold
// bit-identical data and the per-key "last writer" must be unique.
class ConvergenceTest : public ::testing::TestWithParam<ReplicaMode> {};

TEST_P(ConvergenceTest, RandomizedMixedWorkloadConverges) {
  auto cluster = MakeCluster(3, GetParam());
  ASSERT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE a (k INT, v INT, who INT, "
                      "PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE b (k INT, v INT, who INT, "
                      "PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO a VALUES (?, 0, 0)",
                                        {Value::Int(k)})
                    .ok());
    ASSERT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO b VALUES (?, 0, 0)",
                                        {Value::Int(k)})
                    .ok());
  }

  constexpr int kClients = 6;
  constexpr int kTxns = 40;
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Prng prng(static_cast<uint64_t>(c) * 7919 + 13);
      middleware::SrcaRepReplica* mw =
          cluster->replica(static_cast<size_t>(c) % 3);
      for (int i = 0; i < kTxns; ++i) {
        auto txn = mw->BeginTxn();
        if (!txn.ok()) continue;
        auto handle = std::move(txn).value();
        const int64_t token = c * 100000 + i;
        bool ok = true;
        const int ops = 1 + static_cast<int>(prng.Uniform(3));
        for (int o = 0; o < ops && ok; ++o) {
          const char* table = prng.Bernoulli(0.5) ? "a" : "b";
          const int64_t k = static_cast<int64_t>(prng.Uniform(12));
          const int choice = static_cast<int>(prng.Uniform(10));
          std::string sql;
          std::vector<Value> params;
          if (choice < 6) {
            sql = std::string("UPDATE ") + table +
                  " SET v = v + 1, who = ? WHERE k = ?";
            params = {Value::Int(token), Value::Int(k)};
          } else if (choice < 8) {
            sql = std::string("DELETE FROM ") + table + " WHERE k = ?";
            params = {Value::Int(k)};
          } else {
            sql = std::string("INSERT INTO ") + table + " VALUES (?, 1, ?)";
            params = {Value::Int(k), Value::Int(token)};
          }
          ok = mw->Execute(handle, sql, params).ok();
        }
        if (!ok) {
          mw->RollbackTxn(handle);
          continue;
        }
        if (mw->CommitTxn(handle).ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  cluster->Quiesce();
  EXPECT_GT(committed.load(), 0);
  // Order-independent drain check (holds for both pipeline widths).
  for (size_t r = 0; r < cluster->size(); ++r) {
    EXPECT_EQ(cluster->replica(r)->PendingQueueSize(), 0u) << "replica " << r;
  }

  for (const char* table : {"a", "b"}) {
    auto r0 = cluster->db(0)->ExecuteAutoCommit(
        std::string("SELECT * FROM ") + table + " ORDER BY k");
    ASSERT_TRUE(r0.ok());
    for (size_t r = 1; r < 3; ++r) {
      auto rr = cluster->db(r)->ExecuteAutoCommit(
          std::string("SELECT * FROM ") + table + " ORDER BY k");
      ASSERT_TRUE(rr.ok());
      ASSERT_EQ(rr.value().NumRows(), r0.value().NumRows())
          << "table " << table << " replica " << r;
      for (size_t i = 0; i < rr.value().rows.size(); ++i) {
        for (size_t col = 0; col < rr.value().rows[i].size(); ++col) {
          EXPECT_EQ(rr.value().rows[i][col], r0.value().rows[i][col])
              << "table " << table << " replica " << r << " row " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ConvergenceTest,
                         ::testing::Values(ReplicaMode::kSrcaRep,
                                           ReplicaMode::kSrcaOpt),
                         [](const auto& info) {
                           return info.param == ReplicaMode::kSrcaRep
                                      ? "SrcaRep"
                                      : "SrcaOpt";
                         });

// Multiple seeds for the staircase under SRCA-Rep (parameterized sweep).
class StaircaseSeeds : public ::testing::TestWithParam<int> {};

TEST_P(StaircaseSeeds, HoldsForSeed) {
  auto cluster = MakeCluster(2, ReplicaMode::kSrcaRep);
  ASSERT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE pair (k VARCHAR(4), v INT, "
                      "PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(
      cluster->ExecuteEverywhere("INSERT INTO pair VALUES ('x', 0)").ok());
  ASSERT_TRUE(
      cluster->ExecuteEverywhere("INSERT INTO pair VALUES ('y', 0)").ok());
  std::vector<Observation> observations;
  RunStaircaseWorkload(*cluster, &observations, 1 + GetParam() % 2, 25, 3,
                       40);
  std::string bad;
  EXPECT_TRUE(IsStaircase(observations, &bad)) << bad;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaircaseSeeds, ::testing::Range(0, 4));

}  // namespace
}  // namespace sirep
