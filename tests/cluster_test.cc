// Tests for the cluster harness: wiring, discovery, loading, the cost
// model, and capacity-limited charging.

#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "sql/parser.h"

namespace sirep::cluster {
namespace {

using sql::Value;

TEST(CostModelTest, DisabledByDefault) {
  CostModel cost;
  EXPECT_FALSE(cost.enabled());
}

TEST(CostModelTest, StatementCosts) {
  CostModel cost;
  cost.select_service = std::chrono::microseconds(100);
  cost.update_service = std::chrono::microseconds(200);
  cost.insert_service = std::chrono::microseconds(300);
  cost.delete_service = std::chrono::microseconds(400);
  EXPECT_TRUE(cost.enabled());

  auto select = sql::Parse("SELECT * FROM t").value();
  auto update = sql::Parse("UPDATE t SET a = 1").value();
  auto insert = sql::Parse("INSERT INTO t VALUES (1)").value();
  auto del = sql::Parse("DELETE FROM t").value();
  EXPECT_EQ(cost.StatementCost(select).count(), 100);
  EXPECT_EQ(cost.StatementCost(update).count(), 200);
  EXPECT_EQ(cost.StatementCost(insert).count(), 300);
  EXPECT_EQ(cost.StatementCost(del).count(), 400);
}

TEST(CostModelTest, ApplyCostScalesWithWriteSetSize) {
  CostModel cost;
  cost.update_service = std::chrono::microseconds(1000);
  cost.apply_fraction = 0.2;
  storage::WriteSet ws;
  for (int64_t i = 0; i < 10; ++i) {
    ws.Record({"t", sql::Key{{Value::Int(i)}}}, storage::WriteOp::kUpdate,
              {Value::Int(i)});
  }
  // 10 entries * 20% of 1000us = 2000us: the paper's "applying writesets
  // takes ~20% of executing the entire transaction".
  EXPECT_EQ(cost.ApplyCost(ws).count(), 2000);
}

TEST(ReplicaNodeTest, ChargeIsNoopWhenDisabled) {
  ReplicaNode node("n", 1, CostModel{});
  const auto t0 = std::chrono::steady_clock::now();
  node.Charge(std::chrono::microseconds(100000));
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));
}

TEST(ReplicaNodeTest, CapacityLimitsParallelism) {
  CostModel cost;
  cost.update_service = std::chrono::microseconds(30000);  // 30 ms
  ReplicaNode node("n", /*workers=*/1, cost);
  node.SetEmulationEnabled(true);

  // Two concurrent charges through 1 worker => ~60 ms total.
  const auto t0 = std::chrono::steady_clock::now();
  std::thread other([&] { node.Charge(cost.update_service); });
  node.Charge(cost.update_service);
  other.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 55);
}

TEST(ClusterTest, StartAndDiscover) {
  ClusterOptions options;
  options.num_replicas = 4;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.Discover().size(), 4u);
  cluster.CrashReplica(2);
  EXPECT_EQ(cluster.Discover().size(), 3u);
}

TEST(ClusterTest, ExecuteEverywhereLoadsAllReplicas) {
  ClusterOptions options;
  options.num_replicas = 3;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(cluster.ExecuteEverywhere("INSERT INTO t VALUES (1, 5)").ok());
  for (size_t r = 0; r < 3; ++r) {
    auto result =
        cluster.db(r)->ExecuteAutoCommit("SELECT v FROM t WHERE k = 1");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().rows[0][0].AsInt(), 5);
  }
}

TEST(ClusterTest, LoadEverywhereRunsLoader) {
  ClusterOptions options;
  options.num_replicas = 2;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  int calls = 0;
  ASSERT_TRUE(cluster
                  .LoadEverywhere([&](engine::Database* db) -> Status {
                    ++calls;
                    auto r = db->ExecuteAutoCommit(
                        "CREATE TABLE x (k INT, PRIMARY KEY (k))");
                    return r.ok() ? Status::OK() : r.status();
                  })
                  .ok());
  EXPECT_EQ(calls, 2);
}

TEST(ClusterTest, EmulationTogglesPerNode) {
  ClusterOptions options;
  options.num_replicas = 1;
  options.cost.select_service = std::chrono::microseconds(30000);
  options.workers_per_replica = 1;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, PRIMARY KEY (k))")
                  .ok());

  // Emulation off: fast.
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(cluster.db(0)->ExecuteAutoCommit("SELECT * FROM t").ok());
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));

  // Emulation on: the select takes >= 30ms.
  cluster.SetEmulationEnabled(true);
  t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(cluster.db(0)->ExecuteAutoCommit("SELECT * FROM t").ok());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(28));
}

TEST(ClusterTest, GcsDelayConfigurable) {
  ClusterOptions options;
  options.num_replicas = 2;
  options.gcs.multicast_delay = std::chrono::microseconds(3000);  // Spread-ish
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(cluster.ExecuteEverywhere("INSERT INTO t VALUES (1, 0)").ok());

  auto* mw = cluster.replica(0);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE t SET v = 1 WHERE k = 1").ok());
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(mw->CommitTxn(handle).ok());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The commit had to wait for the totally ordered (delayed) delivery.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2);
}

TEST(ClusterTest, AggregateStatsSums) {
  ClusterOptions options;
  options.num_replicas = 2;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  ASSERT_TRUE(cluster.ExecuteEverywhere("INSERT INTO t VALUES (1, 0)").ok());
  auto* mw = cluster.replica(0);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE t SET v = 1 WHERE k = 1").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());
  cluster.Quiesce();
  auto stats = cluster.AggregateStats();
  EXPECT_EQ(stats.committed, 2u);  // local + remote apply
}

}  // namespace
}  // namespace sirep::cluster
