// Unit tests for sql::Value, Row, and Key semantics.

#include "sql/value.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace sirep::sql {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, IntDoubleCrossCompare) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(4.1).Compare(Value::Int(4)), 0);
}

TEST(ValueTest, IntIntCompareExact) {
  // Large int64 values that would lose precision as doubles.
  const int64_t big = (int64_t{1} << 62) + 1;
  EXPECT_GT(Value::Int(big).Compare(Value::Int(big - 1)), 0);
  EXPECT_EQ(Value::Int(big).Compare(Value::Int(big)), 0);
}

TEST(ValueTest, NullComparesEqualAndLowest) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Null().Compare(Value::String("")), 0);
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
}

TEST(ValueTest, CrossTypeOrderingIsStable) {
  // NULL < BOOL < numeric < STRING
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("a")), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::String("k").Hash(), Value::String("k").Hash());
  // Compare-equal int and double hash equal (needed for key indexing).
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-4).ToString(), "-4");
  EXPECT_EQ(Value::String("s").ToString(), "'s'");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
}

TEST(KeyTest, OrderingLexicographic) {
  Key a{{Value::Int(1), Value::Int(2)}};
  Key b{{Value::Int(1), Value::Int(3)}};
  Key c{{Value::Int(2)}};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
  Key prefix{{Value::Int(1)}};
  EXPECT_TRUE(prefix < a);  // shorter prefix sorts first
}

TEST(KeyTest, EqualityAndHash) {
  Key a{{Value::Int(1), Value::String("x")}};
  Key b{{Value::Int(1), Value::String("x")}};
  Key c{{Value::Int(1), Value::String("y")}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.Hash(), b.Hash());

  std::unordered_set<Key, KeyHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(KeyTest, WorksAsMapKey) {
  std::map<Key, int> m;
  m[Key{{Value::Int(2)}}] = 2;
  m[Key{{Value::Int(1)}}] = 1;
  m[Key{{Value::Int(3)}}] = 3;
  int expected = 1;
  for (const auto& [k, v] : m) EXPECT_EQ(v, expected++);
}

TEST(RowTest, ToStringFormats) {
  Row row{Value::Int(1), Value::String("a"), Value::Null()};
  EXPECT_EQ(RowToString(row), "(1, 'a', NULL)");
}

}  // namespace
}  // namespace sirep::sql
