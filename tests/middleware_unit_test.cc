// Unit tests for the middleware building blocks: WsList, ShardedWsIndex,
// ToCommitQueue, HoleTracker, TableLockManager, and commit-path stage
// tracing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <thread>

#include "cluster/cluster.h"
#include "middleware/hole_tracker.h"
#include "middleware/sharded_ws_index.h"
#include "middleware/table_locks.h"
#include "middleware/tocommit_queue.h"
#include "middleware/ws_list.h"
#include "obs/trace.h"
#include "sql/value.h"
#include "storage/write_set.h"

namespace sirep::middleware {
namespace {

using storage::WriteOp;
using storage::WriteSet;

std::shared_ptr<const WriteSet> Ws(
    std::initializer_list<std::pair<const char*, int64_t>> tuples) {
  auto ws = std::make_shared<WriteSet>();
  for (const auto& [table, key] : tuples) {
    ws->Record({table, sql::Key{{sql::Value::Int(key)}}}, WriteOp::kUpdate,
               {sql::Value::Int(key)});
  }
  return ws;
}

// ---- WsList ----

TEST(WsListTest, ConflictsAfterCert) {
  WsList list;
  list.Append(1, Ws({{"t", 1}}));
  list.Append(2, Ws({{"t", 2}}));
  list.Append(3, Ws({{"t", 3}}));

  // cert = 0 sees everything.
  EXPECT_TRUE(list.ConflictsAfter(0, *Ws({{"t", 2}})));
  // cert = 2: only tid 3 is checked.
  EXPECT_FALSE(list.ConflictsAfter(2, *Ws({{"t", 2}})));
  EXPECT_TRUE(list.ConflictsAfter(2, *Ws({{"t", 3}})));
  // cert = 3: nothing newer.
  EXPECT_FALSE(list.ConflictsAfter(3, *Ws({{"t", 3}})));
  // Disjoint writesets never conflict.
  EXPECT_FALSE(list.ConflictsAfter(0, *Ws({{"u", 1}})));
}

TEST(WsListTest, WindowPruning) {
  WsList list(/*max_entries=*/3);
  for (uint64_t tid = 1; tid <= 5; ++tid) {
    list.Append(tid, Ws({{"t", static_cast<int64_t>(tid)}}));
  }
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.MinRetainedTid(), 3u);
  // Conflicts inside the retained window are still exact.
  EXPECT_TRUE(list.ConflictsAfter(2, *Ws({{"t", 4}})));
  EXPECT_FALSE(list.ConflictsAfter(4, *Ws({{"t", 4}})));
}

// ---- ShardedWsIndex ----

TEST(ShardedWsIndexTest, ConflictsAfterCert) {
  ShardedWsIndex index;
  index.Append(1, Ws({{"t", 1}}));
  index.Append(2, Ws({{"t", 2}}));
  index.Append(3, Ws({{"t", 3}}));

  EXPECT_TRUE(index.ConflictsAfter(0, *Ws({{"t", 2}})));
  EXPECT_FALSE(index.ConflictsAfter(2, *Ws({{"t", 2}})));
  EXPECT_TRUE(index.ConflictsAfter(2, *Ws({{"t", 3}})));
  EXPECT_FALSE(index.ConflictsAfter(3, *Ws({{"t", 3}})));
  EXPECT_FALSE(index.ConflictsAfter(0, *Ws({{"u", 1}})));
}

TEST(ShardedWsIndexTest, WindowPruning) {
  ShardedWsIndex index(/*max_entries=*/3);
  for (uint64_t tid = 1; tid <= 5; ++tid) {
    index.Append(tid, Ws({{"t", static_cast<int64_t>(tid)}}));
  }
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.MinRetainedTid(), 3u);
  EXPECT_TRUE(index.ConflictsAfter(2, *Ws({{"t", 4}})));
  EXPECT_FALSE(index.ConflictsAfter(4, *Ws({{"t", 4}})));
}

// Evicting an old writeset must not forget a *newer* writer of the same
// tuple: the per-tuple map entry is dropped only when the evicted tid
// still owns it.
TEST(ShardedWsIndexTest, EvictionKeepsNewestWriterOfTuple) {
  ShardedWsIndex index(/*max_entries=*/2);
  index.Append(1, Ws({{"t", 7}}));
  index.Append(2, Ws({{"t", 7}}));  // same tuple, newer writer
  index.Append(3, Ws({{"t", 8}}));  // evicts tid 1's entry
  EXPECT_EQ(index.MinRetainedTid(), 2u);
  // tid 2 still conflicts even though tid 1 (same tuple) was evicted.
  EXPECT_TRUE(index.ConflictsAfter(1, *Ws({{"t", 7}})));
  EXPECT_FALSE(index.ConflictsAfter(2, *Ws({{"t", 7}})));
}

TEST(ShardedWsIndexTest, SnapshotLoadRoundTrip) {
  ShardedWsIndex donor;
  donor.Append(4, Ws({{"t", 1}}));
  donor.Append(5, Ws({{"t", 2}, {"u", 2}}));

  ShardedWsIndex joiner;
  joiner.Append(1, Ws({{"stale", 1}}));  // replaced by Load
  joiner.Load(donor.Snapshot());
  EXPECT_EQ(joiner.size(), 2u);
  EXPECT_EQ(joiner.MinRetainedTid(), 4u);
  EXPECT_TRUE(joiner.ConflictsAfter(4, *Ws({{"u", 2}})));
  EXPECT_FALSE(joiner.ConflictsAfter(0, *Ws({{"stale", 1}})));
}

// Differential check against WsList, the literal paper formulation: for
// a long random append/probe sequence (fixed seed, deterministic) both
// structures must return identical verdicts — validation decisions are
// part of the cross-replica determinism argument, so the O(writeset)
// index must be decision-equivalent, not just approximately right.
TEST(ShardedWsIndexTest, DifferentialAgainstWsList) {
  constexpr size_t kWindow = 16;
  WsList oracle(kWindow);
  ShardedWsIndex index(kWindow, /*num_shards=*/4);
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int64_t> key(0, 24);
  std::uniform_int_distribution<int> nkeys(1, 4);
  std::uniform_int_distribution<int> table(0, 1);
  const char* tables[] = {"a", "b"};

  auto random_ws = [&]() {
    auto ws = std::make_shared<WriteSet>();
    const int n = nkeys(rng);
    for (int i = 0; i < n; ++i) {
      ws->Record({tables[table(rng)], sql::Key{{sql::Value::Int(key(rng))}}},
                 WriteOp::kUpdate, {sql::Value::Int(0)});
    }
    return ws;
  };

  for (uint64_t tid = 1; tid <= 400; ++tid) {
    auto ws = random_ws();
    oracle.Append(tid, ws);
    index.Append(tid, ws);
    ASSERT_EQ(oracle.size(), index.size());
    ASSERT_EQ(oracle.MinRetainedTid(), index.MinRetainedTid());

    // Probe both with certs across the whole window (including below
    // MinRetainedTid and above the newest tid).
    for (int probe = 0; probe < 8; ++probe) {
      auto probe_ws = random_ws();
      std::uniform_int_distribution<uint64_t> cert(
          tid > kWindow + 4 ? tid - kWindow - 4 : 0, tid + 2);
      const uint64_t c = cert(rng);
      ASSERT_EQ(oracle.ConflictsAfter(c, *probe_ws),
                index.ConflictsAfter(c, *probe_ws))
          << "tid=" << tid << " cert=" << c;
    }
  }
}

// The window-pruning / snapshot-load boundary, exhaustively: a donor
// snapshot taken at every possible window fill level, loaded into
// joiners whose own window is narrower, equal, and wider, then both
// oracle and joiner keep appending past the eviction edge. Every probe
// sweeps certs straddling MinRetainedTid - 1 (the conservative-abort
// boundary) — the exact off-by-one territory where a pruning bug would
// let a joiner reach a different verdict than a live replica.
TEST(ShardedWsIndexTest, DifferentialAtSnapshotLoadPruneBoundary) {
  constexpr size_t kDonorWindow = 8;
  std::mt19937 rng(8008);
  std::uniform_int_distribution<int64_t> key(0, 9);

  auto ws_for = [&](int64_t k) {
    auto ws = std::make_shared<WriteSet>();
    ws->Record({"t", sql::Key{{sql::Value::Int(k)}}}, WriteOp::kUpdate,
               {sql::Value::Int(0)});
    return ws;
  };

  for (size_t fill = 1; fill <= 2 * kDonorWindow; ++fill) {
    ShardedWsIndex donor(kDonorWindow, /*num_shards=*/4);
    for (uint64_t tid = 1; tid <= fill; ++tid) {
      donor.Append(tid, ws_for(key(rng)));
    }
    const auto snapshot = donor.Snapshot();
    ASSERT_EQ(snapshot.size(), std::min(fill, kDonorWindow));

    for (size_t joiner_window : {kDonorWindow / 2, kDonorWindow,
                                 2 * kDonorWindow}) {
      // The oracle replays the *retained suffix the joiner keeps* —
      // loading re-runs the normal prune, so a snapshot wider than the
      // joiner's window must converge to exactly the suffix a live
      // WsList of that width would hold.
      WsList oracle(joiner_window);
      for (const auto& entry : snapshot) oracle.Append(entry.tid, entry.ws);

      ShardedWsIndex joiner(joiner_window, /*num_shards=*/4);
      joiner.Load(snapshot);
      ASSERT_EQ(joiner.size(), oracle.size());
      ASSERT_EQ(joiner.MinRetainedTid(), oracle.MinRetainedTid());

      // Both keep running: append past the eviction edge post-load.
      for (uint64_t tid = fill + 1; tid <= fill + kDonorWindow; ++tid) {
        auto ws = ws_for(key(rng));
        oracle.Append(tid, ws);
        joiner.Append(tid, ws);
        ASSERT_EQ(joiner.MinRetainedTid(), oracle.MinRetainedTid());

        const uint64_t min_tid = oracle.MinRetainedTid();
        for (int64_t k = 0; k <= 9; ++k) {
          auto probe = ws_for(k);
          const auto digests = ShardedWsIndex::DigestsOf(*probe);
          // Certs pinned to the boundary: min-2 .. min+1, plus the head.
          for (uint64_t cert :
               {min_tid >= 2 ? min_tid - 2 : 0, min_tid - 1, min_tid,
                min_tid + 1, tid - 1, tid}) {
            ASSERT_EQ(oracle.ConflictsAfter(cert, *probe),
                      joiner.ConflictsAfter(cert, *probe))
                << "fill=" << fill << " jw=" << joiner_window
                << " tid=" << tid << " cert=" << cert << " key=" << k;
            // The digest probe (the non-holder path) must agree too.
            ASSERT_EQ(joiner.ConflictsAfter(cert, *probe),
                      joiner.ConflictsAfterDigests(cert, digests))
                << "fill=" << fill << " cert=" << cert << " key=" << k;
          }
        }
      }
    }
  }
}

// ---- ToCommitQueue ----

TEST(ToCommitQueueTest, ConflictsWithRemoteOnly) {
  ToCommitQueue q;
  q.Append({1, {0, 1}, /*local=*/true, Ws({{"t", 1}}), true});
  q.Append({2, {1, 1}, /*local=*/false, Ws({{"t", 2}}), false});

  // Conflicts with the *local* entry don't count (Adjustment 1: the DB
  // already checked those).
  EXPECT_FALSE(q.ConflictsWithRemote(*Ws({{"t", 1}})));
  EXPECT_TRUE(q.ConflictsWithRemote(*Ws({{"t", 2}})));
  EXPECT_FALSE(q.ConflictsWithRemote(*Ws({{"u", 9}})));
}

TEST(ToCommitQueueTest, DispatchRespectsConflictOrder) {
  ToCommitQueue q;
  q.Append({1, {1, 1}, false, Ws({{"t", 1}}), false});
  q.Append({2, {1, 2}, false, Ws({{"t", 1}}), false});  // conflicts with 1
  q.Append({3, {1, 3}, false, Ws({{"t", 9}}), false});  // independent

  auto ready = q.TakeDispatchableRemotes();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].tid, 1u);
  EXPECT_EQ(ready[1].tid, 3u);

  // tid 2 stays blocked until tid 1 is removed.
  EXPECT_TRUE(q.TakeDispatchableRemotes().empty());
  q.Remove(1);
  auto next = q.TakeDispatchableRemotes();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].tid, 2u);
}

TEST(ToCommitQueueTest, LocalEntriesNeverDispatched) {
  ToCommitQueue q;
  q.Append({1, {0, 1}, /*local=*/true, Ws({{"t", 1}}), true});
  EXPECT_TRUE(q.TakeDispatchableRemotes().empty());
  EXPECT_EQ(q.FrontTid(), 1u);
  q.Remove(1);
  EXPECT_TRUE(q.empty());
}

TEST(ToCommitQueueTest, RemoveUnknownTidIsNoop) {
  ToCommitQueue q;
  q.Append({5, {1, 1}, false, Ws({{"t", 1}}), false});
  q.Remove(99);
  EXPECT_EQ(q.size(), 1u);
}

// ---- HoleTracker ----

TEST(HoleTrackerTest, NoHolesInOrderCommits) {
  HoleTracker holes(/*enabled=*/true);
  holes.NoteValidated(1);
  holes.NoteValidated(2);
  EXPECT_FALSE(holes.HasHoles());
  holes.RecordCommit(1, [] { return 0; });
  EXPECT_FALSE(holes.HasHoles());
  holes.RecordCommit(2, [] { return 0; });
  EXPECT_FALSE(holes.HasHoles());
  EXPECT_EQ(holes.StablePrefix(), 2u);
}

TEST(HoleTrackerTest, OutOfOrderCommitCreatesHole) {
  HoleTracker holes(true);
  holes.NoteValidated(1);
  holes.NoteValidated(2);
  // tid 2 commits first (local transactions may do that).
  holes.RecordCommit(2, [] { return 0; });
  EXPECT_TRUE(holes.HasHoles());
  EXPECT_EQ(holes.StablePrefix(), 0u);
  holes.RecordCommit(1, [] { return 0; });
  EXPECT_FALSE(holes.HasHoles());
  EXPECT_EQ(holes.StablePrefix(), 2u);
}

TEST(HoleTrackerTest, StartWaitsForHoleToClose) {
  HoleTracker holes(true);
  holes.NoteValidated(1);
  holes.NoteValidated(2);
  holes.RecordCommit(2, [] { return 0; });  // hole over tid 1

  std::atomic<bool> started{false};
  std::thread starter([&] {
    holes.RunStart([&] {
      started.store(true);
      return 0;
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(started.load());  // blocked on the hole

  holes.RecordCommit(1, [] { return 0; });  // closes the hole
  starter.join();
  EXPECT_TRUE(started.load());
  auto stats = holes.stats();
  EXPECT_EQ(stats.starts, 1u);
  EXPECT_EQ(stats.delayed_starts, 1u);
}

TEST(HoleTrackerTest, GateClosesForHoleCreatorsWhileStartsWait) {
  HoleTracker holes(true);
  holes.NoteValidated(1);
  holes.NoteValidated(2);
  holes.NoteValidated(3);
  holes.RecordCommit(2, [] { return 0; });  // hole over tid 1

  // Nobody waiting to start: gates open for everyone.
  EXPECT_TRUE(holes.GateOpen(3, false));

  std::atomic<bool> started{false};
  std::thread starter([&] {
    holes.RunStart([&] {
      started.store(true);
      return 0;
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(started.load());

  // While the start waits: remote tid 3 would create a new hole (tid 1
  // outstanding) => gate closed; tid 1 itself creates no new hole =>
  // gate open; local transactions always pass.
  EXPECT_FALSE(holes.GateOpen(3, /*is_local=*/false));
  EXPECT_TRUE(holes.GateOpen(1, /*is_local=*/false));
  EXPECT_TRUE(holes.GateOpen(3, /*is_local=*/true));

  holes.RecordCommit(1, [] { return 0; });  // closes the hole
  starter.join();
  EXPECT_TRUE(started.load());
  // Start proceeded; gate reopens for tid 3.
  EXPECT_TRUE(holes.GateOpen(3, false));
}

TEST(HoleTrackerTest, ChangeListenerFires) {
  HoleTracker holes(true);
  std::atomic<int> changes{0};
  holes.SetChangeListener([&] { changes.fetch_add(1); });
  holes.NoteValidated(1);
  holes.RecordCommit(1, [] { return 0; });
  EXPECT_GE(changes.load(), 1);
  holes.NoteValidated(2);
  holes.Discard(2);
  EXPECT_GE(changes.load(), 2);
}

TEST(HoleTrackerTest, DisabledModeNeverBlocksOrGatesButCounts) {
  HoleTracker holes(/*enabled=*/false);  // SRCA-Opt
  holes.NoteValidated(1);
  holes.NoteValidated(2);
  holes.RecordCommit(2, [] { return 0; });
  EXPECT_TRUE(holes.HasHoles());
  // Gate is always open in SRCA-Opt.
  EXPECT_TRUE(holes.GateOpen(3, false));
  // Start proceeds immediately despite the hole, but the statistic
  // records that a hole was present.
  std::atomic<bool> started{false};
  holes.RunStart([&] {
    started.store(true);
    return 0;
  });
  EXPECT_TRUE(started.load());
  EXPECT_EQ(holes.stats().delayed_starts, 1u);
}

TEST(HoleTrackerTest, DiscardUnblocks) {
  HoleTracker holes(true);
  holes.NoteValidated(1);
  holes.NoteValidated(2);
  holes.RecordCommit(2, [] { return 0; });
  std::atomic<bool> started{false};
  std::thread starter([&] {
    holes.RunStart([&] {
      started.store(true);
      return 0;
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(started.load());
  holes.Discard(1);  // e.g. replica shutting down
  starter.join();
  EXPECT_TRUE(started.load());
}

TEST(HoleTrackerTest, DeferredCommitStatistic) {
  HoleTracker holes(true);
  holes.CountDeferredCommit();
  holes.CountDeferredCommit();
  EXPECT_EQ(holes.stats().delayed_commits, 2u);
}

// ---- TableLockManager ----

TEST(TableLockTest, ExclusiveBlocksExclusive) {
  TableLockManager locks;
  auto t1 = locks.Request({"a"}, TableLockMode::kExclusive);
  auto t2 = locks.Request({"a"}, TableLockMode::kExclusive);
  EXPECT_TRUE(locks.IsGranted(t1));
  EXPECT_FALSE(locks.IsGranted(t2));
  locks.Release(t1);
  EXPECT_TRUE(locks.IsGranted(t2));
  EXPECT_EQ(locks.contended_requests(), 1u);
}

TEST(TableLockTest, SharedLocksCompatible) {
  TableLockManager locks;
  auto r1 = locks.Request({"a"}, TableLockMode::kShared);
  auto r2 = locks.Request({"a"}, TableLockMode::kShared);
  EXPECT_TRUE(locks.IsGranted(r1));
  EXPECT_TRUE(locks.IsGranted(r2));
  auto w = locks.Request({"a"}, TableLockMode::kExclusive);
  EXPECT_FALSE(locks.IsGranted(w));
  locks.Release(r1);
  locks.Release(r2);
  EXPECT_TRUE(locks.IsGranted(w));
}

TEST(TableLockTest, MultiTableAtomicRequest) {
  TableLockManager locks;
  auto t1 = locks.Request({"a", "b"}, TableLockMode::kExclusive);
  auto t2 = locks.Request({"b", "c"}, TableLockMode::kExclusive);
  auto t3 = locks.Request({"c"}, TableLockMode::kExclusive);
  EXPECT_TRUE(locks.IsGranted(t1));
  EXPECT_FALSE(locks.IsGranted(t2));  // waits for t1 on b
  EXPECT_FALSE(locks.IsGranted(t3));  // waits for t2 on c (enqueue order)
  locks.Release(t1);
  EXPECT_TRUE(locks.IsGranted(t2));
  locks.Release(t2);
  EXPECT_TRUE(locks.IsGranted(t3));
}

TEST(TableLockTest, NoDeadlockWithOpposingOrders) {
  // Tickets enqueue atomically at all tables, so "a,b" vs "b,a" cannot
  // deadlock: the second request waits on both.
  TableLockManager locks;
  auto t1 = locks.Request({"a", "b"}, TableLockMode::kExclusive);
  auto t2 = locks.Request({"b", "a"}, TableLockMode::kExclusive);
  EXPECT_TRUE(locks.IsGranted(t1));
  EXPECT_FALSE(locks.IsGranted(t2));
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    locks.Wait(t2);
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  locks.Release(t1);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(TableLockTest, DuplicateTablesDeduplicated) {
  TableLockManager locks;
  auto t = locks.Request({"a", "a", "a"}, TableLockMode::kExclusive);
  EXPECT_TRUE(locks.IsGranted(t));
  locks.Release(t);
  auto t2 = locks.Request({"a"}, TableLockMode::kExclusive);
  EXPECT_TRUE(locks.IsGranted(t2));
}

// ---- commit-path stage tracing ----

TEST(CommitTraceTest, CommittedTxnRecordsEveryStageExactlyOnce) {
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(
      cluster
          .ExecuteEverywhere("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
          .ok());
  ASSERT_TRUE(cluster.ExecuteEverywhere("INSERT INTO kv VALUES (1, 0)").ok());

  SrcaRepReplica* mw = cluster.replica(0);
  auto txn = mw->BeginTxn();
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE kv SET v = 7 WHERE k = 1").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());

  // A committed local update passes through each commit-path stage
  // exactly once (one statement, one validation round). kApply is the
  // remote-replica writeset application and stays zero here.
  ASSERT_NE(handle.trace, nullptr);
  const obs::TxnTrace& trace = *handle.trace;
  for (const obs::Stage stage :
       {obs::Stage::kExecute, obs::Stage::kExtract, obs::Stage::kLocalValidate,
        obs::Stage::kMulticast, obs::Stage::kGlobalValidate,
        obs::Stage::kCommit}) {
    EXPECT_EQ(trace.Count(stage), 1u) << obs::StageName(stage);
    EXPECT_FALSE(trace.Running(stage)) << obs::StageName(stage);
  }
  EXPECT_EQ(trace.Count(obs::Stage::kApply), 0u);

  // The trace was flushed into the replica's registry at commit: each
  // local-path stage histogram saw this transaction.
  cluster.Quiesce();
  const auto snap = mw->metrics().Snapshot();
  for (const obs::Stage stage :
       {obs::Stage::kExecute, obs::Stage::kExtract, obs::Stage::kLocalValidate,
        obs::Stage::kMulticast, obs::Stage::kGlobalValidate,
        obs::Stage::kCommit}) {
    const auto it = snap.histograms.find(obs::StageMetricName(stage));
    ASSERT_NE(it, snap.histograms.end()) << obs::StageName(stage);
    EXPECT_GE(it->second.count, 1u) << obs::StageName(stage);
  }
  // And the remote replica applied the writeset, feeding the apply/commit
  // histograms there.
  const auto remote = cluster.replica(1)->metrics().Snapshot();
  const auto apply =
      remote.histograms.find(obs::StageMetricName(obs::Stage::kApply));
  ASSERT_NE(apply, remote.histograms.end());
  EXPECT_GE(apply->second.count, 1u);
}

}  // namespace
}  // namespace sirep::middleware
