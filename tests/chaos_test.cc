// Chaos test: sustained random traffic through the JDBC-like driver while
// replicas repeatedly crash and recover online. Afterwards every
// surviving replica must hold bit-identical data and the global counter
// invariant must hold (each committed transaction incremented exactly one
// row by exactly one — so sum(v) across rows == commits reported by
// clients... minus nothing: uniform delivery makes "driver said OK"
// equivalent to "applied everywhere").

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/cluster.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

struct ChaosParam {
  uint64_t seed;
  int crash_rounds;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosTest, ConvergesThroughCrashesAndRecoveries) {
  const auto param = GetParam();
  ClusterOptions options;
  options.num_replicas = 4;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(cluster
                    .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                       {Value::Int(k)})
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<long long> committed{0};
  std::atomic<long long> uncertain{0};  // driver said lost/unavailable

  constexpr int kClients = 5;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Prng prng(param.seed * 7717 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        client::ConnectionOptions copt;
        copt.seed = prng.Next();
        auto conn = cluster.Connect(copt);
        if (!conn.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        auto& connection = *conn.value();
        connection.SetAutoCommit(false);
        // A few transactions per connection, then reconnect (exercises
        // discovery continuously).
        for (int t = 0; t < 5 && !stop.load(); ++t) {
          const int64_t k = static_cast<int64_t>(prng.Uniform(16));
          auto r = connection.Execute(
              "UPDATE kv SET v = v + 1 WHERE k = ?", {Value::Int(k)});
          if (!r.ok()) {
            connection.Rollback();
            continue;
          }
          Status st = connection.Commit();
          if (st.ok()) {
            committed.fetch_add(1);
          } else if (st.code() == StatusCode::kTransactionLost ||
                     st.code() == StatusCode::kUnavailable) {
            // In-doubt resolution said "not committed" — under uniform
            // delivery that verdict is definitive, so nothing to count.
            uncertain.fetch_add(1);
          }
        }
      }
    });
  }

  // Chaos driver: crash a random replica, let traffic run degraded,
  // recover it online, repeat. Always keep >= 3 alive so a quorum of
  // donors exists.
  Prng chaos(param.seed);
  for (int round = 0; round < param.crash_rounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const size_t victim = chaos.Uniform(cluster.size());
    if (!cluster.replica(victim)->IsAlive()) continue;
    cluster.CrashReplica(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(cluster.RestartReplica(victim).ok())
        << "round " << round << " victim " << victim;
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& t : clients) t.join();
  cluster.Quiesce();

  EXPECT_GT(committed.load(), 0);

  // Every replica (all recovered by now) agrees, and the total equals
  // the committed count.
  long long expect_sum = committed.load();
  auto sum_at = [&](size_t r) {
    auto res = cluster.db(r)->ExecuteAutoCommit("SELECT SUM(v) FROM kv");
    return res.ok() ? res.value().rows[0][0].AsInt() : -1;
  };
  for (size_t r = 0; r < cluster.size(); ++r) {
    EXPECT_EQ(sum_at(r), expect_sum) << "replica " << r;
  }
  // Row-level equality too.
  auto reference =
      cluster.db(0)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  for (size_t r = 1; r < cluster.size(); ++r) {
    auto other =
        cluster.db(r)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
    ASSERT_EQ(other.value().NumRows(), reference.value().NumRows());
    for (size_t i = 0; i < reference.value().rows.size(); ++i) {
      EXPECT_EQ(other.value().rows[i], reference.value().rows[i])
          << "replica " << r << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(ChaosParam{11, 3},
                                           ChaosParam{29, 4},
                                           ChaosParam{47, 3}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace sirep
