// Chaos test: sustained random traffic through the JDBC-like driver while
// replicas repeatedly crash and recover online. Afterwards every
// surviving replica must hold bit-identical data and the global counter
// invariant must hold (each committed transaction incremented exactly one
// row by exactly one — so sum(v) across rows == commits reported by
// clients... minus nothing: uniform delivery makes "driver said OK"
// equivalent to "applied everywhere").

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "common/failpoint.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

struct ChaosParam {
  uint64_t seed;
  int crash_rounds;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosTest, ConvergesThroughCrashesAndRecoveries) {
  const auto param = GetParam();
  ClusterOptions options;
  options.num_replicas = 4;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(cluster
                    .ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                       {Value::Int(k)})
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<long long> committed{0};
  std::atomic<long long> uncertain{0};  // driver said lost/unavailable

  constexpr int kClients = 5;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Prng prng(param.seed * 7717 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        client::ConnectionOptions copt;
        copt.seed = prng.Next();
        auto conn = cluster.Connect(copt);
        if (!conn.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        auto& connection = *conn.value();
        connection.SetAutoCommit(false);
        // A few transactions per connection, then reconnect (exercises
        // discovery continuously).
        for (int t = 0; t < 5 && !stop.load(); ++t) {
          const int64_t k = static_cast<int64_t>(prng.Uniform(16));
          auto r = connection.Execute(
              "UPDATE kv SET v = v + 1 WHERE k = ?", {Value::Int(k)});
          if (!r.ok()) {
            connection.Rollback();
            continue;
          }
          Status st = connection.Commit();
          if (st.ok()) {
            committed.fetch_add(1);
          } else if (st.code() == StatusCode::kTransactionLost ||
                     st.code() == StatusCode::kUnavailable) {
            // In-doubt resolution said "not committed" — under uniform
            // delivery that verdict is definitive, so nothing to count.
            uncertain.fetch_add(1);
          }
        }
      }
    });
  }

  // Chaos driver: crash a random replica, let traffic run degraded,
  // recover it online, repeat. Always keep >= 3 alive so a quorum of
  // donors exists.
  Prng chaos(param.seed);
  for (int round = 0; round < param.crash_rounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const size_t victim = chaos.Uniform(cluster.size());
    if (!cluster.replica(victim)->IsAlive()) continue;
    cluster.CrashReplica(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(cluster.RestartReplica(victim).ok())
        << "round " << round << " victim " << victim;
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& t : clients) t.join();
  cluster.Quiesce();

  EXPECT_GT(committed.load(), 0);

  // Every replica (all recovered by now) agrees, and the total equals
  // the committed count.
  long long expect_sum = committed.load();
  auto sum_at = [&](size_t r) {
    auto res = cluster.db(r)->ExecuteAutoCommit("SELECT SUM(v) FROM kv");
    return res.ok() ? res.value().rows[0][0].AsInt() : -1;
  };
  for (size_t r = 0; r < cluster.size(); ++r) {
    EXPECT_EQ(sum_at(r), expect_sum) << "replica " << r;
  }
  // Row-level equality too.
  auto reference =
      cluster.db(0)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  for (size_t r = 1; r < cluster.size(); ++r) {
    auto other =
        cluster.db(r)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
    ASSERT_EQ(other.value().NumRows(), reference.value().NumRows());
    for (size_t i = 0; i < reference.value().rows.size(); ++i) {
      EXPECT_EQ(other.value().rows[i], reference.value().rows[i])
          << "replica " << r << " row " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(ChaosParam{11, 3},
                                           ChaosParam{29, 4},
                                           ChaosParam{47, 3}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// ---- failpoint-driven chaos ----

/// Shared invariant checks: every replica holds sum(v) == `committed`
/// and all replicas are row-identical.
void ExpectConverged(Cluster& cluster, long long committed) {
  auto sum_at = [&](size_t r) {
    auto res = cluster.db(r)->ExecuteAutoCommit("SELECT SUM(v) FROM kv");
    return res.ok() ? res.value().rows[0][0].AsInt() : -1;
  };
  for (size_t r = 0; r < cluster.size(); ++r) {
    EXPECT_EQ(sum_at(r), committed) << "replica " << r;
  }
  auto reference =
      cluster.db(0)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
  for (size_t r = 1; r < cluster.size(); ++r) {
    auto other =
        cluster.db(r)->ExecuteAutoCommit("SELECT * FROM kv ORDER BY k");
    ASSERT_EQ(other.value().NumRows(), reference.value().NumRows());
    for (size_t i = 0; i < reference.value().rows.size(); ++i) {
      EXPECT_EQ(other.value().rows[i], reference.value().rows[i])
          << "replica " << r << " row " << i;
    }
  }
}

std::unique_ptr<Cluster> MakeChaosCluster(gcs::TransportKind transport) {
  ClusterOptions options;
  options.num_replicas = 4;
  options.gcs.transport = transport;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 16; ++k) {
    EXPECT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                        {Value::Int(k)})
                    .ok());
  }
  return cluster;
}

/// Runs `clients` traffic threads of seeded counter-increments for
/// `duration`; returns how many commits the drivers acknowledged.
long long RunTraffic(Cluster& cluster, uint64_t seed, int clients,
                     std::chrono::milliseconds duration) {
  std::atomic<bool> stop{false};
  std::atomic<long long> committed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Prng prng(seed * 9176 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        client::ConnectionOptions copt;
        copt.seed = prng.Next();
        auto conn = cluster.Connect(copt);
        if (!conn.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        auto& connection = *conn.value();
        connection.SetAutoCommit(false);
        for (int t = 0; t < 5 && !stop.load(); ++t) {
          const int64_t k = static_cast<int64_t>(prng.Uniform(16));
          auto r = connection.Execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                                      {Value::Int(k)});
          if (!r.ok()) {
            connection.Rollback();
            continue;
          }
          if (connection.Commit().ok()) committed.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& t : threads) t.join();
  return committed.load();
}

/// Stable membership, but the transport, the appliers, and the
/// validator all misbehave probabilistically — drops, transient apply
/// deadlocks, validation delays — from one seed. A commit the driver
/// acknowledged must still reach every replica exactly once.
class FailpointChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_P(FailpointChaosTest, ConvergesUnderInjectedTransientFaults) {
  auto cluster = MakeChaosCluster(gcs::TransportKind::kDefault);

  failpoint::Seed(GetParam());
  ASSERT_TRUE(failpoint::ArmFromList(
                  "gcs.send=1in(25,error(unavailable));"
                  "mw.apply=1in(40,error(deadlock));"
                  "mw.validate=1in(50,delay(200us))")
                  .ok());
  const long long committed =
      RunTraffic(*cluster, GetParam(), 5, std::chrono::milliseconds(250));
  failpoint::DisarmAll();
  cluster->Quiesce();

  EXPECT_GT(committed, 0);
  ExpectConverged(*cluster, committed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailpointChaosTest,
                         ::testing::Values(101, 211, 307),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

/// TCP transport: an injected connection reset mid-commit. The commit
/// is reported lost (the frame never reached the sequencer), the
/// victim replica detects its dead socket and expels itself (crash),
/// survivors keep serving, and an online restart reconverges everyone.
TEST(TcpChaosTest, ConnectionResetSelfExpulsionAndRecovery) {
  auto cluster = MakeChaosCluster(gcs::TransportKind::kTcp);
  struct DisarmGuard {
    ~DisarmGuard() { failpoint::DisarmAll(); }
  } guard;

  // Baseline traffic so the restarted replica has something to catch
  // up on beyond the reset itself.
  long long committed =
      RunTraffic(*cluster, 17, 3, std::chrono::milliseconds(100));

  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(false);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = v + 1 WHERE k = 3").ok());
  {
    failpoint::ScopedFailpoint fp("gcs.tcp.send.reset",
                                  "error(unavailable)*1");
    const Status st = conn->Commit();
    EXPECT_EQ(st.code(), StatusCode::kTransactionLost) << st;
    EXPECT_EQ(failpoint::Fires("gcs.tcp.send.reset"), 1u);
  }

  // The victim's receive loop sees the dead socket and self-expels.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster->replica(0)->IsAlive() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(cluster->replica(0)->IsAlive())
      << "reset socket did not trigger self-expulsion";

  // Survivors keep committing while replica 0 is down.
  committed += RunTraffic(*cluster, 18, 3, std::chrono::milliseconds(100));

  ASSERT_TRUE(cluster->RestartReplica(0).ok());
  cluster->Quiesce();
  EXPECT_GT(committed, 0);
  ExpectConverged(*cluster, committed);
}

/// TCP transport: duplicated and delayed frames from one seed. The
/// stream-index dedup must drop every duplicate — exactly-once delivery
/// keeps sum(v) == commits.
TEST(TcpChaosTest, DuplicateAndDelayedFramesConverge) {
  auto cluster = MakeChaosCluster(gcs::TransportKind::kTcp);
  struct DisarmGuard {
    ~DisarmGuard() { failpoint::DisarmAll(); }
  } guard;

  failpoint::Seed(53);
  ASSERT_TRUE(failpoint::ArmFromList(
                  "gcs.tcp.recv.dup=1in(8,error);"
                  "gcs.tcp.recv=1in(16,delay(300us))")
                  .ok());
  const long long committed =
      RunTraffic(*cluster, 53, 4, std::chrono::milliseconds(250));
  const uint64_t dups_injected = failpoint::Fires("gcs.tcp.recv.dup");
  failpoint::DisarmAll();
  cluster->Quiesce();

  EXPECT_GT(committed, 0);
  ExpectConverged(*cluster, committed);
  // Every injected duplicate was delivered to some receiver and dropped
  // by the stream-index check.
  if (dups_injected > 0) {
    const auto snap = cluster->DumpMetrics();
    const auto it = snap.counters.find("gcs.tcp.dup_frames_dropped");
    ASSERT_NE(it, snap.counters.end());
    EXPECT_GE(it->second, dups_injected);
  }
}

}  // namespace
}  // namespace sirep
