// Driver-level tests: JDBC-like connection semantics over the replicated
// cluster (autocommit, explicit transactions, error handling, session
// behaviour).

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace sirep {
namespace {

using client::Connection;
using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

class ClientConnectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_replicas = 3;
    cluster_ = std::make_unique<Cluster>(options);
    ASSERT_TRUE(cluster_->Start().ok());
    ASSERT_TRUE(cluster_
                    ->ExecuteEverywhere(
                        "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                    .ok());
    for (int k = 0; k < 5; ++k) {
      ASSERT_TRUE(cluster_
                      ->ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                          {Value::Int(k)})
                      .ok());
    }
    auto conn = cluster_->Connect();
    ASSERT_TRUE(conn.ok());
    conn_ = std::move(conn).value();
  }

  int64_t Read(int64_t k) {
    auto r = conn_->Execute("SELECT v FROM kv WHERE k = ?", {Value::Int(k)});
    EXPECT_TRUE(r.ok()) << r.status();
    return r.value().rows[0][0].AsInt();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Connection> conn_;
};

TEST_F(ClientConnectionTest, AutocommitPerStatement) {
  EXPECT_TRUE(conn_->autocommit());
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = 5 WHERE k = 0").ok());
  EXPECT_FALSE(conn_->in_transaction());
  EXPECT_EQ(Read(0), 5);
}

TEST_F(ClientConnectionTest, ExplicitBeginCommit) {
  ASSERT_TRUE(conn_->Execute("BEGIN").ok());
  EXPECT_TRUE(conn_->in_transaction());
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = 1 WHERE k = 1").ok());
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = 2 WHERE k = 2").ok());
  // Other clients can't see uncommitted work.
  auto other = std::move(cluster_->Connect()).value();
  auto peek = other->Execute("SELECT v FROM kv WHERE k = 1");
  EXPECT_EQ(peek.value().rows[0][0].AsInt(), 0);
  ASSERT_TRUE(conn_->Execute("COMMIT").ok());
  EXPECT_FALSE(conn_->in_transaction());
  EXPECT_EQ(Read(1), 1);
  EXPECT_EQ(Read(2), 2);
}

TEST_F(ClientConnectionTest, RollbackStatement) {
  ASSERT_TRUE(conn_->Execute("BEGIN").ok());
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = 9 WHERE k = 3").ok());
  ASSERT_TRUE(conn_->Execute("ROLLBACK").ok());
  EXPECT_EQ(Read(3), 0);
}

TEST_F(ClientConnectionTest, DoubleBeginRejected) {
  ASSERT_TRUE(conn_->Execute("BEGIN").ok());
  auto r = conn_->Execute("BEGIN");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  conn_->Rollback();
}

TEST_F(ClientConnectionTest, ImplicitBeginWithAutocommitOff) {
  conn_->SetAutoCommit(false);
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = 7 WHERE k = 4").ok());
  EXPECT_TRUE(conn_->in_transaction());  // JDBC: first statement begins
  ASSERT_TRUE(conn_->Commit().ok());
  conn_->SetAutoCommit(true);
  EXPECT_EQ(Read(4), 7);
}

TEST_F(ClientConnectionTest, ParseErrorLeavesConnectionUsable) {
  EXPECT_FALSE(conn_->Execute("SELEC bogus").ok());
  EXPECT_TRUE(conn_->Execute("SELECT v FROM kv WHERE k = 0").ok());
}

TEST_F(ClientConnectionTest, CommitWithoutTxnIsNoop) {
  EXPECT_TRUE(conn_->Commit().ok());
  EXPECT_TRUE(conn_->Rollback().ok());
}

TEST_F(ClientConnectionTest, ReadYourOwnWritesWithinTxn) {
  conn_->SetAutoCommit(false);
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = 42 WHERE k = 0").ok());
  EXPECT_EQ(Read(0), 42);  // same transaction sees it
  conn_->Rollback();
  conn_->SetAutoCommit(true);
  EXPECT_EQ(Read(0), 0);
}

TEST_F(ClientConnectionTest, ReadYourWritesAcrossTransactions) {
  // Sticky sessions: consecutive transactions on one connection run at
  // the same replica, so committed writes are immediately visible.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = ? WHERE k = 0",
                               {Value::Int(i)})
                    .ok());
    EXPECT_EQ(Read(0), i);
  }
}

TEST_F(ClientConnectionTest, ConflictSurfacesAsConflictStatus) {
  client::ConnectionOptions o1, o2;
  o1.pinned_replica = 0;
  o2.pinned_replica = 1;
  auto c1 = std::move(cluster_->Connect(o1)).value();
  auto c2 = std::move(cluster_->Connect(o2)).value();
  c1->SetAutoCommit(false);
  c2->SetAutoCommit(false);
  ASSERT_TRUE(c1->Execute("UPDATE kv SET v = 1 WHERE k = 2").ok());
  ASSERT_TRUE(c2->Execute("UPDATE kv SET v = 2 WHERE k = 2").ok());
  Status s1 = c1->Commit();
  Status s2 = c2->Commit();
  EXPECT_NE(s1.ok(), s2.ok());
  const Status& failed = s1.ok() ? s2 : s1;
  EXPECT_EQ(failed.code(), StatusCode::kConflict);
}

TEST_F(ClientConnectionTest, ParamsFlowThrough) {
  ASSERT_TRUE(conn_->Execute("UPDATE kv SET v = ? WHERE k = ?",
                             {Value::Int(33), Value::Int(1)})
                  .ok());
  auto r = conn_->Execute("SELECT v FROM kv WHERE k = ?", {Value::Int(1)});
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 33);
}

TEST_F(ClientConnectionTest, DestructorRollsBackOpenTxn) {
  {
    auto conn = std::move(cluster_->Connect()).value();
    conn->SetAutoCommit(false);
    ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 99 WHERE k = 3").ok());
    // Connection dropped with the transaction open.
  }
  EXPECT_EQ(Read(3), 0);
}

}  // namespace
}  // namespace sirep
