// Unit tests for the multi-version table: version chains, snapshot
// visibility, tombstones, and scans.

#include "storage/mvcc_table.h"

#include <gtest/gtest.h>

#include "storage/write_set.h"

namespace sirep::storage {
namespace {

using sql::Value;

sql::Schema KvSchema() {
  return sql::Schema({{"k", sql::ValueType::kInt},
                      {"v", sql::ValueType::kString}},
                     {0});
}

sql::Key K(int64_t k) { return sql::Key{{Value::Int(k)}}; }
sql::Row R(int64_t k, const std::string& v) {
  return {Value::Int(k), Value::String(v)};
}

TEST(MvccTableTest, ReadMissingKey) {
  MvccTable t("t", KvSchema());
  EXPECT_EQ(t.ReadVisible(K(1), 100), nullptr);
  EXPECT_EQ(t.ReadNewest(K(1)), nullptr);
}

TEST(MvccTableTest, SnapshotSelectsVersion) {
  MvccTable t("t", KvSchema());
  t.Install(K(1), 10, false, R(1, "v10"));
  t.Install(K(1), 20, false, R(1, "v20"));
  t.Install(K(1), 30, false, R(1, "v30"));

  EXPECT_EQ(t.ReadVisible(K(1), 5), nullptr);  // before first commit
  auto v10 = t.ReadVisible(K(1), 10);
  ASSERT_NE(v10, nullptr);
  EXPECT_EQ(v10->data[1].AsString(), "v10");
  auto v25 = t.ReadVisible(K(1), 25);
  ASSERT_NE(v25, nullptr);
  EXPECT_EQ(v25->data[1].AsString(), "v20");
  auto v99 = t.ReadVisible(K(1), 99);
  ASSERT_NE(v99, nullptr);
  EXPECT_EQ(v99->data[1].AsString(), "v30");
}

TEST(MvccTableTest, NewestIgnoresSnapshot) {
  MvccTable t("t", KvSchema());
  t.Install(K(1), 10, false, R(1, "a"));
  t.Install(K(1), 50, false, R(1, "b"));
  auto newest = t.ReadNewest(K(1));
  ASSERT_NE(newest, nullptr);
  EXPECT_EQ(newest->commit_ts, 50u);
}

TEST(MvccTableTest, TombstoneVisibility) {
  MvccTable t("t", KvSchema());
  t.Install(K(1), 10, false, R(1, "x"));
  t.Install(K(1), 20, true, {});  // delete at ts 20

  auto before = t.ReadVisible(K(1), 15);
  ASSERT_NE(before, nullptr);
  EXPECT_FALSE(before->deleted);
  auto after = t.ReadVisible(K(1), 25);
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->deleted);
}

TEST(MvccTableTest, ReinsertAfterDelete) {
  MvccTable t("t", KvSchema());
  t.Install(K(1), 10, false, R(1, "old"));
  t.Install(K(1), 20, true, {});
  t.Install(K(1), 30, false, R(1, "new"));
  auto v = t.ReadVisible(K(1), 35);
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->deleted);
  EXPECT_EQ(v->data[1].AsString(), "new");
}

TEST(MvccTableTest, ScanVisibleSkipsTombstonesAndFutures) {
  MvccTable t("t", KvSchema());
  t.Install(K(1), 10, false, R(1, "a"));
  t.Install(K(2), 10, false, R(2, "b"));
  t.Install(K(2), 20, true, {});           // deleted later
  t.Install(K(3), 30, false, R(3, "c"));   // committed later

  std::vector<int64_t> keys;
  t.ScanVisible(15, [&](const sql::Key& k, const sql::Row&) {
    keys.push_back(k.parts[0].AsInt());
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2}));

  keys.clear();
  t.ScanVisible(25, [&](const sql::Key& k, const sql::Row&) {
    keys.push_back(k.parts[0].AsInt());
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1}));

  keys.clear();
  t.ScanVisible(35, [&](const sql::Key& k, const sql::Row&) {
    keys.push_back(k.parts[0].AsInt());
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3}));
}

TEST(MvccTableTest, ScanDeliversKeyOrder) {
  MvccTable t("t", KvSchema());
  t.Install(K(5), 10, false, R(5, "e"));
  t.Install(K(1), 10, false, R(1, "a"));
  t.Install(K(3), 10, false, R(3, "c"));
  std::vector<int64_t> keys;
  t.ScanVisible(99, [&](const sql::Key& k, const sql::Row&) {
    keys.push_back(k.parts[0].AsInt());
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5}));
}

TEST(MvccTableTest, OldVersionsSurviveNewInstalls) {
  MvccTable t("t", KvSchema());
  t.Install(K(1), 10, false, R(1, "a"));
  auto old = t.ReadVisible(K(1), 10);
  t.Install(K(1), 20, false, R(1, "b"));
  // The shared_ptr we hold still points at the old version.
  EXPECT_EQ(old->data[1].AsString(), "a");
  EXPECT_EQ(t.ReadVisible(K(1), 10)->data[1].AsString(), "a");
}

TEST(WriteSetTest, RecordAndCoalesce) {
  WriteSet ws;
  TupleId t1{"t", K(1)};
  ws.Record(t1, WriteOp::kInsert, R(1, "a"));
  ws.Record(t1, WriteOp::kUpdate, R(1, "b"));
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.entries()[0].op, WriteOp::kInsert);  // stays an insert
  EXPECT_EQ(ws.entries()[0].after[1].AsString(), "b");

  ws.Record(t1, WriteOp::kDelete, {});
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.entries()[0].op, WriteOp::kDelete);
  EXPECT_TRUE(ws.entries()[0].after.empty());
}

TEST(WriteSetTest, DeleteThenInsertBecomesUpdate) {
  WriteSet ws;
  TupleId t1{"t", K(1)};
  ws.Record(t1, WriteOp::kDelete, {});
  ws.Record(t1, WriteOp::kInsert, R(1, "new"));
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.entries()[0].op, WriteOp::kUpdate);
}

TEST(WriteSetTest, IntersectionDetection) {
  WriteSet a, b, c;
  a.Record({"t", K(1)}, WriteOp::kUpdate, R(1, "x"));
  a.Record({"t", K(2)}, WriteOp::kUpdate, R(2, "x"));
  b.Record({"t", K(2)}, WriteOp::kUpdate, R(2, "y"));
  c.Record({"t", K(3)}, WriteOp::kUpdate, R(3, "z"));
  c.Record({"u", K(1)}, WriteOp::kUpdate, R(1, "z"));

  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));  // "u".1 != "t".1
  EXPECT_FALSE(c.Intersects(b));
}

TEST(WriteSetTest, OrderPreservedAcrossTuples) {
  WriteSet ws;
  ws.Record({"t", K(3)}, WriteOp::kUpdate, R(3, "a"));
  ws.Record({"t", K(1)}, WriteOp::kUpdate, R(1, "b"));
  ws.Record({"t", K(2)}, WriteOp::kUpdate, R(2, "c"));
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws.entries()[0].tuple.key.parts[0].AsInt(), 3);
  EXPECT_EQ(ws.entries()[1].tuple.key.parts[0].AsInt(), 1);
  EXPECT_EQ(ws.entries()[2].tuple.key.parts[0].AsInt(), 2);
}

TEST(WriteSetTest, TablesListsDistinctTables) {
  WriteSet ws;
  ws.Record({"b", K(1)}, WriteOp::kUpdate, {});
  ws.Record({"a", K(1)}, WriteOp::kUpdate, {});
  ws.Record({"b", K(2)}, WriteOp::kUpdate, {});
  auto tables = ws.Tables();
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0], "b");  // first-touch order
  EXPECT_EQ(tables[1], "a");
}

}  // namespace
}  // namespace sirep::storage
