// Tests for secondary indexes and version garbage collection (vacuum):
// index-backed lookups through SQL, visibility re-checks against stale
// index entries, own-write merging, and horizon-safe vacuuming.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace sirep::engine {
namespace {

using sql::Value;

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must("CREATE TABLE o (id INT, cust INT, total INT, PRIMARY KEY (id))");
    for (int i = 1; i <= 30; ++i) {
      Must("INSERT INTO o VALUES (?, ?, ?)",
           {Value::Int(i), Value::Int(i % 5), Value::Int(i * 10)});
    }
    Must("CREATE INDEX o_cust ON o (cust)");
  }

  QueryResult Must(const std::string& sql,
                   const std::vector<Value>& params = {}) {
    auto result = db_.ExecuteAutoCommit(sql, params);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(IndexTest, CreateIndexValidation) {
  EXPECT_FALSE(db_.ExecuteAutoCommit("CREATE INDEX i ON nope (x)").ok());
  EXPECT_FALSE(db_.ExecuteAutoCommit("CREATE INDEX i ON o (zz)").ok());
  // Duplicate index rejected.
  EXPECT_EQ(db_.ExecuteAutoCommit("CREATE INDEX dup ON o (cust)")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(IndexTest, IndexLookupReturnsCorrectRows) {
  auto r = Must("SELECT id FROM o WHERE cust = 2 ORDER BY id");
  ASSERT_EQ(r.NumRows(), 6u);  // 2, 7, 12, 17, 22, 27
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[5][0].AsInt(), 27);
}

TEST_F(IndexTest, IndexAndExtraPredicatesCompose) {
  auto r = Must("SELECT id FROM o WHERE cust = 2 AND total > 100");
  ASSERT_EQ(r.NumRows(), 4u);  // 12, 17, 22, 27
}

TEST_F(IndexTest, StaleEntriesFilteredAfterUpdate) {
  // Move id=2 from cust 2 to cust 4: the index keeps a stale entry for
  // the old value; the visibility re-check must drop it.
  Must("UPDATE o SET cust = 4 WHERE id = 2");
  auto old_bucket = Must("SELECT id FROM o WHERE cust = 2 ORDER BY id");
  for (const auto& row : old_bucket.rows) {
    EXPECT_NE(row[0].AsInt(), 2);
  }
  auto new_bucket = Must("SELECT COUNT(*) FROM o WHERE cust = 4");
  EXPECT_EQ(new_bucket.rows[0][0].AsInt(), 7);  // 6 originals + moved row
}

TEST_F(IndexTest, DeletedRowsInvisibleThroughIndex) {
  Must("DELETE FROM o WHERE id = 7");
  auto r = Must("SELECT id FROM o WHERE cust = 2 ORDER BY id");
  for (const auto& row : r.rows) EXPECT_NE(row[0].AsInt(), 7);
}

TEST_F(IndexTest, OwnWritesVisibleThroughIndexPath) {
  auto txn = db_.Begin();
  ASSERT_TRUE(
      db_.Execute(txn, "INSERT INTO o VALUES (100, 2, 5)").ok());
  ASSERT_TRUE(db_.Execute(txn, "UPDATE o SET cust = 2 WHERE id = 5").ok());
  ASSERT_TRUE(db_.Execute(txn, "DELETE FROM o WHERE id = 12").ok());
  auto r = db_.Execute(txn, "SELECT id FROM o WHERE cust = 2 ORDER BY id");
  ASSERT_TRUE(r.ok());
  std::vector<int64_t> ids;
  for (const auto& row : r.value().rows) ids.push_back(row[0].AsInt());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 100), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), 5), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), 12), ids.end());
  db_.Abort(txn);
}

TEST_F(IndexTest, IndexRespectsSnapshots) {
  auto reader = db_.Begin();
  Must("UPDATE o SET cust = 2 WHERE id = 30");  // commits after snapshot
  auto r = db_.Execute(reader, "SELECT COUNT(*) FROM o WHERE cust = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 6);  // snapshot view
  db_.Abort(reader);
  auto fresh = Must("SELECT COUNT(*) FROM o WHERE cust = 2");
  EXPECT_EQ(fresh.rows[0][0].AsInt(), 7);
}

TEST_F(IndexTest, BackfillIndexesExistingData) {
  // Index created after the fact (in SetUp the data predates the index).
  Must("CREATE INDEX o_total ON o (total)");
  auto r = Must("SELECT id FROM o WHERE total = 250");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 25);
}

TEST_F(IndexTest, UpdateAndDeleteUseIndexPath) {
  auto r1 = Must("UPDATE o SET total = 0 WHERE cust = 3");
  EXPECT_EQ(r1.rows_affected, 6);
  auto r2 = Must("DELETE FROM o WHERE cust = 3");
  EXPECT_EQ(r2.rows_affected, 6);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM o").rows[0][0].AsInt(), 24);
}

// ---- vacuum ----

TEST_F(IndexTest, VacuumFreesDeadVersions) {
  for (int i = 0; i < 10; ++i) {
    Must("UPDATE o SET total = ? WHERE id = 1", {Value::Int(i)});
  }
  // No active snapshots: everything but the newest version per key dies.
  const size_t freed = db_.engine().Vacuum();
  EXPECT_GE(freed, 10u);
  // Data still correct.
  EXPECT_EQ(Must("SELECT total FROM o WHERE id = 1").rows[0][0].AsInt(), 9);
  // Idempotent.
  EXPECT_EQ(db_.engine().Vacuum(), 0u);
}

TEST_F(IndexTest, VacuumRespectsActiveSnapshots) {
  auto reader = db_.Begin();  // pins the horizon
  const int64_t before =
      db_.Execute(reader, "SELECT total FROM o WHERE id = 1")
          .value()
          .rows[0][0]
          .AsInt();
  for (int i = 0; i < 5; ++i) {
    Must("UPDATE o SET total = ? WHERE id = 1", {Value::Int(1000 + i)});
  }
  db_.engine().Vacuum();
  // The reader's snapshot must still see its version.
  auto r = db_.Execute(reader, "SELECT total FROM o WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), before);
  db_.Abort(reader);
  // After the reader finishes, vacuum can collect.
  EXPECT_GE(db_.engine().Vacuum(), 4u);
}

TEST_F(IndexTest, VacuumDropsOldTombstones) {
  const size_t keys_before = db_.engine().GetTable("o")->KeyCount();
  Must("DELETE FROM o WHERE id = 1");
  db_.engine().Vacuum();
  EXPECT_EQ(db_.engine().GetTable("o")->KeyCount(), keys_before - 1);
  // And the row is really gone.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM o WHERE id = 1").rows[0][0].AsInt(),
            0);
}

TEST_F(IndexTest, VacuumPrunesStaleIndexEntries) {
  Must("UPDATE o SET cust = 4 WHERE id = 2");
  db_.engine().Vacuum();
  // Direct probe: the stale (cust=2 -> id=2) entry must be gone.
  auto keys = db_.engine().GetTable("o")->IndexLookup(
      "cust", Value::Int(2));
  for (const auto& k : keys) EXPECT_NE(k.parts[0].AsInt(), 2);
  // Queries still correct after pruning.
  auto r = Must("SELECT COUNT(*) FROM o WHERE cust = 4");
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
}

TEST_F(IndexTest, ReinsertAfterVacuumedDelete) {
  Must("DELETE FROM o WHERE id = 3");
  db_.engine().Vacuum();
  Must("INSERT INTO o VALUES (3, 1, 999)");
  EXPECT_EQ(Must("SELECT total FROM o WHERE id = 3").rows[0][0].AsInt(),
            999);
}

}  // namespace
}  // namespace sirep::engine
