// 1-copy-SI under partial replication (partition-mapped writeset
// routing). The cluster is 4 replicas, 8 partitions, replication factor
// 2 — two disjoint holder groups: slots {0,1} and {2,3}. Clients obey
// the routing contract (transactions execute at a holder of every
// partition they write; the middleware aborts misroutes), and the
// 1-copy-SI observables are asserted against the replicas that hold the
// data:
//
//  * the snapshot staircase holds per group while every transaction is
//    certified cluster-wide (non-holders advance the same validation
//    state from digest headers alone);
//  * cross-partition transactions *within* a group commit normally and
//    read their own writes;
//  * misrouted transactions abort before dissemination, leaving every
//    replica untouched;
//  * a holder crashing mid-commit of a cross-partition transaction
//    loses nothing: the group peer commits it, and the crashed holder
//    recovers its partitions from that peer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/failpoint.h"

namespace sirep {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;
using cluster::PartitionMap;
using middleware::ReplicaMode;
using sql::Value;

constexpr size_t kReplicas = 4;
constexpr size_t kPartitions = 8;
constexpr size_t kRf = 2;

std::unique_ptr<Cluster> MakePartialCluster() {
  ClusterOptions options;
  options.num_replicas = kReplicas;
  options.replica.mode = ReplicaMode::kSrcaRep;
  options.partitions = kPartitions;
  options.replication_factor = kRf;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_NE(cluster->partition_map(), nullptr);
  EXPECT_TRUE(cluster->partition_map()->partial());
  return cluster;
}

storage::TupleId Tuple(const std::string& table, int64_t k) {
  return {table, sql::Key{{Value::Int(k)}}};
}

size_t GroupOfKey(const PartitionMap& map, const std::string& table,
                  int64_t k) {
  return map.GroupOfPartition(map.PartitionOf(Tuple(table, k)));
}

/// First slot of `group` (groups are contiguous runs of rf slots).
size_t FirstSlotOfGroup(size_t group) { return group * kRf; }

/// Smallest key >= `from` whose partition belongs to `group`,
/// optionally avoiding one partition (to force cross-partition
/// writesets within a group).
int64_t FindKeyInGroup(const PartitionMap& map, const std::string& table,
                       size_t group, int64_t from,
                       int64_t avoid_partition = -1) {
  for (int64_t k = from;; ++k) {
    const size_t p = map.PartitionOf(Tuple(table, k));
    if (map.GroupOfPartition(p) == group &&
        static_cast<int64_t>(p) != avoid_partition) {
      return k;
    }
  }
}

Status Commit1(middleware::SrcaRepReplica* mw, const std::string& sql) {
  auto txn = mw->BeginTxn();
  if (!txn.ok()) return txn.status();
  auto handle = std::move(txn).value();
  Status st = mw->Execute(handle, sql).status();
  if (!st.ok()) {
    mw->RollbackTxn(handle);
    return st;
  }
  return mw->CommitTxn(handle);
}

int64_t ReadV(engine::Database* db, int64_t k) {
  auto r = db->ExecuteAutoCommit("SELECT v FROM pair WHERE k = " +
                                 std::to_string(k));
  if (!r.ok() || r.value().NumRows() != 1) return -1;
  return r.value().rows[0][0].AsInt();
}

struct Observation {
  int64_t x, y;
};

bool IsStaircase(const std::vector<Observation>& obs, std::string* bad) {
  auto sorted = obs;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].y < sorted[i - 1].y && sorted[i].x > sorted[i - 1].x) {
      *bad = "(" + std::to_string(sorted[i - 1].x) + "," +
             std::to_string(sorted[i - 1].y) + ") vs (" +
             std::to_string(sorted[i].x) + "," +
             std::to_string(sorted[i].y) + ")";
      return false;
    }
  }
  return true;
}

class OneCopySiPartialTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  /// CREATE TABLE pair + one row per key at every replica (loading
  /// bypasses replication, like restoring the same backup everywhere;
  /// non-held rows simply stay at their seeded value).
  void Seed(Cluster& cluster, const std::vector<int64_t>& keys) {
    ASSERT_TRUE(cluster
                    .ExecuteEverywhere(
                        "CREATE TABLE pair (k INT, v INT, PRIMARY KEY (k))")
                    .ok());
    for (int64_t k : keys) {
      ASSERT_TRUE(cluster
                      .ExecuteEverywhere("INSERT INTO pair VALUES (?, 0)",
                                         {Value::Int(k)})
                      .ok());
    }
  }
};

TEST_F(OneCopySiPartialTest, RoutedStaircaseHoldsPerGroup) {
  auto cluster = MakePartialCluster();
  const PartitionMap& map = *cluster->partition_map();

  // One (x, y) pair per group, writers and readers routed to holders.
  int64_t x[2], y[2];
  for (size_t g = 0; g < 2; ++g) {
    x[g] = FindKeyInGroup(map, "pair", g, /*from=*/g * 1000);
    y[g] = FindKeyInGroup(map, "pair", g, x[g] + 1);
  }
  Seed(*cluster, {x[0], y[0], x[1], y[1]});

  std::mutex obs_mu;
  std::vector<Observation> observations[2];
  std::vector<std::thread> threads;
  for (size_t g = 0; g < 2; ++g) {
    for (int w = 0; w < 2; ++w) {
      for (int64_t key : {x[g], y[g]}) {
        threads.emplace_back([&, g, w, key] {
          middleware::SrcaRepReplica* mw =
              cluster->replica(FirstSlotOfGroup(g) + w % kRf);
          const std::string sql = "UPDATE pair SET v = v + 1 WHERE k = " +
                                  std::to_string(key);
          for (int i = 0; i < 25; ++i) (void)Commit1(mw, sql);
        });
      }
    }
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&, g, r] {
        middleware::SrcaRepReplica* mw =
            cluster->replica(FirstSlotOfGroup(g) + r % kRf);
        for (int i = 0; i < 50; ++i) {
          auto txn = mw->BeginTxn();
          if (!txn.ok()) continue;
          auto handle = std::move(txn).value();
          auto rx = mw->Execute(handle, "SELECT v FROM pair WHERE k = " +
                                            std::to_string(x[g]));
          auto ry = mw->Execute(handle, "SELECT v FROM pair WHERE k = " +
                                            std::to_string(y[g]));
          (void)mw->CommitTxn(handle);
          if (rx.ok() && ry.ok() && rx.value().NumRows() == 1 &&
              ry.value().NumRows() == 1) {
            std::lock_guard<std::mutex> lock(obs_mu);
            observations[g].push_back({rx.value().rows[0][0].AsInt(),
                                       ry.value().rows[0][0].AsInt()});
          }
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  cluster->Quiesce();

  for (size_t g = 0; g < 2; ++g) {
    ASSERT_GT(observations[g].size(), 20u) << "group " << g;
    std::string bad;
    EXPECT_TRUE(IsStaircase(observations[g], &bad))
        << "group " << g << ": incomparable snapshots " << bad;
    // Group peers converge on the group's keys...
    const size_t s0 = FirstSlotOfGroup(g);
    for (int64_t key : {x[g], y[g]}) {
      const int64_t v = ReadV(cluster->db(s0), key);
      EXPECT_GT(v, 0) << "group " << g << " key " << key;
      EXPECT_EQ(ReadV(cluster->db(s0 + 1), key), v)
          << "group " << g << " key " << key;
      // ...while the *other* group never applied them: its copies stay
      // at the seeded value. Stale-by-design is what makes misroutes
      // abort instead of vacuously committing.
      EXPECT_EQ(ReadV(cluster->db(FirstSlotOfGroup(1 - g)), key), 0)
          << "non-holder applied group " << g << " key " << key;
    }
  }

  // Every replica certified every transaction: identical validation
  // prefixes, drained queues, and the partial-path counters prove the
  // header-only route was actually exercised.
  const uint64_t prefix = cluster->replica(0)->StableCommitPrefix();
  EXPECT_GT(prefix, 0u);
  for (size_t r = 1; r < kReplicas; ++r) {
    EXPECT_EQ(cluster->replica(r)->StableCommitPrefix(), prefix)
        << "replica " << r;
    EXPECT_EQ(cluster->replica(r)->PendingQueueSize(), 0u) << "replica " << r;
  }
  const obs::MetricsSnapshot snap = cluster->DumpMetrics();
  EXPECT_GT(snap.counters.at("mw.partial.stripped_sends"), 0u);
  EXPECT_GT(snap.counters.at("mw.partial.header_commits"), 0u);
  EXPECT_EQ(snap.counters.at("mw.partial.misroutes"), 0u);
}

TEST_F(OneCopySiPartialTest, CrossPartitionWithinGroupReadsYourWrites) {
  auto cluster = MakePartialCluster();
  const PartitionMap& map = *cluster->partition_map();

  // Two keys in group 0 but in *different* partitions: the writeset's
  // mask has two bits, both held by slots 0 and 1.
  const int64_t k1 = FindKeyInGroup(map, "pair", /*group=*/0, /*from=*/0);
  const int64_t k2 =
      FindKeyInGroup(map, "pair", /*group=*/0, k1 + 1,
                     static_cast<int64_t>(map.PartitionOf(Tuple("pair", k1))));
  ASSERT_NE(map.PartitionOf(Tuple("pair", k1)),
            map.PartitionOf(Tuple("pair", k2)));
  Seed(*cluster, {k1, k2});

  middleware::SrcaRepReplica* mw = cluster->replica(0);
  auto txn = mw->BeginTxn();
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE pair SET v = 7 WHERE k = " +
                                      std::to_string(k1))
                  .ok());
  ASSERT_TRUE(mw->Execute(handle, "UPDATE pair SET v = 8 WHERE k = " +
                                      std::to_string(k2))
                  .ok());
  // In-transaction read-your-writes.
  auto in_txn = mw->Execute(handle, "SELECT v FROM pair WHERE k = " +
                                        std::to_string(k1));
  ASSERT_TRUE(in_txn.ok());
  EXPECT_EQ(in_txn.value().rows[0][0].AsInt(), 7);
  ASSERT_TRUE(mw->CommitTxn(handle).ok());

  // Post-commit read-your-writes at the executing holder, and at its
  // group peer once the pipeline drains.
  EXPECT_EQ(ReadV(cluster->db(0), k1), 7);
  EXPECT_EQ(ReadV(cluster->db(0), k2), 8);
  cluster->Quiesce();
  EXPECT_EQ(ReadV(cluster->db(1), k1), 7);
  EXPECT_EQ(ReadV(cluster->db(1), k2), 8);
  // Group 1 certified it from the digest header; it never applied.
  EXPECT_EQ(ReadV(cluster->db(2), k1), 0);
  EXPECT_EQ(ReadV(cluster->db(3), k2), 0);
}

TEST_F(OneCopySiPartialTest, MisroutedTransactionsAbortBeforeDissemination) {
  auto cluster = MakePartialCluster();
  const PartitionMap& map = *cluster->partition_map();
  const int64_t g0 = FindKeyInGroup(map, "pair", /*group=*/0, /*from=*/0);
  const int64_t g1 = FindKeyInGroup(map, "pair", /*group=*/1, /*from=*/0);
  Seed(*cluster, {g0, g1});

  // A group-1 key executed at a group-0 holder: refused at commit.
  Status st = Commit1(cluster->replica(0), "UPDATE pair SET v = 5 WHERE k = " +
                                               std::to_string(g1));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;

  // A cross-*group* writeset has no holder anywhere: refused at every
  // replica (the documented cost of the disjoint-group model).
  for (size_t r = 0; r < kReplicas; ++r) {
    auto txn = cluster->replica(r)->BeginTxn();
    ASSERT_TRUE(txn.ok());
    auto handle = std::move(txn).value();
    ASSERT_TRUE(cluster->replica(r)
                    ->Execute(handle, "UPDATE pair SET v = 5 WHERE k = " +
                                          std::to_string(g0))
                    .ok());
    ASSERT_TRUE(cluster->replica(r)
                    ->Execute(handle, "UPDATE pair SET v = 5 WHERE k = " +
                                          std::to_string(g1))
                    .ok());
    st = cluster->replica(r)->CommitTxn(handle);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument)
        << "replica " << r << ": " << st;
  }

  // Nothing was multicast, applied, or validated anywhere.
  cluster->Quiesce();
  for (size_t r = 0; r < kReplicas; ++r) {
    EXPECT_EQ(ReadV(cluster->db(r), g0), 0) << "replica " << r;
    EXPECT_EQ(ReadV(cluster->db(r), g1), 0) << "replica " << r;
    EXPECT_EQ(cluster->replica(r)->StableCommitPrefix(), 0u);
  }
  const obs::MetricsSnapshot snap = cluster->DumpMetrics();
  EXPECT_GE(snap.counters.at("mw.partial.misroutes"), 1u + kReplicas);

  // The guard is a router error, not poison: a correctly routed retry
  // of the same logical work succeeds.
  EXPECT_TRUE(Commit1(cluster->replica(FirstSlotOfGroup(GroupOfKey(
                          map, "pair", g1))),
                      "UPDATE pair SET v = 5 WHERE k = " + std::to_string(g1))
                  .ok());
}

TEST_F(OneCopySiPartialTest, HolderCrashDuringCrossPartitionCommit) {
  auto cluster = MakePartialCluster();
  const PartitionMap& map = *cluster->partition_map();
  const int64_t k1 = FindKeyInGroup(map, "pair", /*group=*/0, /*from=*/0);
  const int64_t k2 =
      FindKeyInGroup(map, "pair", /*group=*/0, k1 + 1,
                     static_cast<int64_t>(map.PartitionOf(Tuple("pair", k1))));
  Seed(*cluster, {k1, k2});

  // Slot 0 dies mid-commit of a cross-partition (two-mask-bit)
  // transaction, *after* the writeset entered the total order: uniform
  // reliable delivery means the surviving group peer must commit it.
  middleware::SrcaRepReplica* mw = cluster->replica(0);
  auto txn = mw->BeginTxn();
  ASSERT_TRUE(txn.ok());
  auto handle = std::move(txn).value();
  ASSERT_TRUE(mw->Execute(handle, "UPDATE pair SET v = 41 WHERE k = " +
                                      std::to_string(k1))
                  .ok());
  ASSERT_TRUE(mw->Execute(handle, "UPDATE pair SET v = 42 WHERE k = " +
                                      std::to_string(k2))
                  .ok());
  {
    failpoint::ScopedFailpoint fp("mw.commit.crash.after_multicast",
                                  "crash*1");
    (void)mw->CommitTxn(handle);  // the executing replica just died
    EXPECT_EQ(failpoint::Fires("mw.commit.crash.after_multicast"), 1u);
  }
  cluster->Quiesce();
  EXPECT_EQ(ReadV(cluster->db(1), k1), 41);
  EXPECT_EQ(ReadV(cluster->db(1), k2), 42);
  // Non-holders certified it (validation prefix advanced) but did not
  // apply it.
  EXPECT_EQ(ReadV(cluster->db(2), k1), 0);
  EXPECT_GT(cluster->replica(2)->StableCommitPrefix(), 0u);

  // The crashed holder restarts and recovers its partitions — the only
  // covering donor is its group peer. Afterwards it serves reads and
  // commits again.
  ASSERT_TRUE(cluster->RestartReplica(0).ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadV(cluster->db(0), k1), 41);
  EXPECT_EQ(ReadV(cluster->db(0), k2), 42);
  EXPECT_TRUE(Commit1(cluster->replica(0), "UPDATE pair SET v = v + 1 "
                                           "WHERE k = " +
                                               std::to_string(k1))
                  .ok());
  cluster->Quiesce();
  EXPECT_EQ(ReadV(cluster->db(1), k1), 42);
}

}  // namespace
}  // namespace sirep
