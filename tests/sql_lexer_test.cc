// Unit tests for the SQL tokenizer.

#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace sirep::sql {
namespace {

std::vector<Token> MustTokenize(const std::string& sql) {
  auto result = Tokenize(sql);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = MustTokenize("select Select SELECT sEleCt");
  ASSERT_EQ(tokens.size(), 5u);  // 4 + end
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = MustTokenize("my_Table _x a1");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "my_Table");
  EXPECT_EQ(tokens[1].text, "_x");
  EXPECT_EQ(tokens[2].text, "a1");
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = MustTokenize("0 42 123456789012345");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 123456789012345LL);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = MustTokenize("3.14 .5 1e3 2.5E-2");
  EXPECT_EQ(tokens[0].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto tokens = MustTokenize("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto result = Tokenize("'oops");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, Operators) {
  auto tokens = MustTokenize("= != <> < <= > >= + - * / ( ) , ; ?");
  std::vector<TokenType> expected = {
      TokenType::kEq,    TokenType::kNe,     TokenType::kNe,
      TokenType::kLt,    TokenType::kLe,     TokenType::kGt,
      TokenType::kGe,    TokenType::kPlus,   TokenType::kMinus,
      TokenType::kStar,  TokenType::kSlash,  TokenType::kLParen,
      TokenType::kRParen, TokenType::kComma, TokenType::kSemicolon,
      TokenType::kParam, TokenType::kEnd};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @ FROM t").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = MustTokenize("SELECT x");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("   \t\n ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IsKeywordHelper) {
  EXPECT_TRUE(IsKeyword("SELECT"));
  EXPECT_TRUE(IsKeyword("COUNT"));
  EXPECT_FALSE(IsKeyword("select"));  // expects uppercase
  EXPECT_FALSE(IsKeyword("foo"));
}

}  // namespace
}  // namespace sirep::sql
