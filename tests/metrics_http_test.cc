// Metrics exposition endpoint (ISSUE 5): the per-middleware loopback
// HTTP listener serving /metrics (Prometheus text) and /flightrecorder,
// and Cluster::StartMetricsEndpoints() wiring one server per replica
// plus the merged /cluster/metrics aggregator. The requests here are
// what `curl` sends — raw sockets, HTTP/1.0, one request per
// connection.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <utility>

#include "cluster/cluster.h"
#include "middleware/metrics_http.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace sirep {
namespace {

/// One curl-style request: connect, send, read to EOF.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesRegisteredEndpoint) {
  middleware::MetricsHttpServer server;
  server.AddEndpoint("/ping", "text/plain", [] { return "pong"; });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  const std::string response = HttpGet(server.port(), "/ping");
  EXPECT_EQ(response.rfind("HTTP/1.0 200", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong"), std::string::npos);
}

TEST(MetricsHttpServerTest, UnknownPathIs404) {
  middleware::MetricsHttpServer server;
  server.AddEndpoint("/ping", "text/plain", [] { return "pong"; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = HttpGet(server.port(), "/nope");
  EXPECT_EQ(response.rfind("HTTP/1.0 404", 0), 0u) << response;
}

TEST(MetricsHttpServerTest, HandlerEvaluatedPerRequest) {
  middleware::MetricsHttpServer server;
  int calls = 0;
  server.AddEndpoint("/n", "text/plain",
                     [&calls] { return std::to_string(++calls); });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(HttpGet(server.port(), "/n").find("\r\n\r\n1"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/n").find("\r\n\r\n2"),
            std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsHttpServerTest, OccupiedPortFallsBackToEphemeral) {
  // A restarting replica can find its old exposition port still held —
  // a predecessor listener not fully closed, or an unrelated squatter.
  // Start() must not fail the restart over a scrape port: it retries on
  // a kernel-assigned ephemeral port and reports the real one via
  // port().
  middleware::MetricsHttpServer squatter;
  squatter.AddEndpoint("/ping", "text/plain", [] { return "old"; });
  ASSERT_TRUE(squatter.Start().ok());
  const uint16_t taken = squatter.port();
  ASSERT_NE(taken, 0);

  middleware::MetricsHttpServer server;
  server.AddEndpoint("/ping", "text/plain", [] { return "new"; });
  ASSERT_TRUE(server.Start(taken).ok());
  EXPECT_NE(server.port(), 0);
  EXPECT_NE(server.port(), taken);
  EXPECT_NE(HttpGet(server.port(), "/ping").find("\r\n\r\nnew"),
            std::string::npos);
  // The squatter is untouched.
  EXPECT_NE(HttpGet(taken, "/ping").find("\r\n\r\nold"), std::string::npos);

  // Once the squatter is gone the original port is bindable again (the
  // listener sets SO_REUSEADDR, so TIME_WAIT remnants don't block it).
  squatter.Stop();
  middleware::MetricsHttpServer reclaimer;
  reclaimer.AddEndpoint("/ping", "text/plain", [] { return "back"; });
  ASSERT_TRUE(reclaimer.Start(taken).ok());
  EXPECT_EQ(reclaimer.port(), taken);
}

TEST(ClusterMetricsEndpointsTest, ScrapeDuringTraffic) {
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  auto* mw = cluster.replica(0);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "INSERT INTO t VALUES (1, 1)").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());
  cluster.Quiesce();

  ASSERT_TRUE(cluster.StartMetricsEndpoints().ok());
  ASSERT_TRUE(cluster.StartMetricsEndpoints().ok());  // idempotent
  const auto ports = cluster.MetricsPorts();
  ASSERT_EQ(ports.size(), 2u);

  for (const uint16_t port : ports) {
    const std::string metrics = HttpGet(port, "/metrics");
    EXPECT_EQ(metrics.rfind("HTTP/1.0 200", 0), 0u) << metrics;
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
    // Valid Prometheus exposition: counter series plus histogram
    // buckets with the +Inf bound.
    EXPECT_NE(metrics.find("mw_committed"), std::string::npos);
    EXPECT_NE(metrics.find("le=\"+Inf\""), std::string::npos);

    const std::string recorder = HttpGet(port, "/flightrecorder");
    EXPECT_EQ(recorder.rfind("HTTP/1.0 200", 0), 0u);

    // The aggregator merges every registry: gcs + mw + storage series
    // appear on any replica's port.
    const std::string merged = HttpGet(port, "/cluster/metrics");
    EXPECT_EQ(merged.rfind("HTTP/1.0 200", 0), 0u);
    EXPECT_NE(merged.find("gcs_messages_delivered"), std::string::npos);
    EXPECT_NE(merged.find("mw_committed"), std::string::npos);
  }

  cluster.StopMetricsEndpoints();
  EXPECT_TRUE(cluster.MetricsPorts().empty());
}

TEST(ClusterMetricsEndpointsTest, HealthzReportsRoleAndView) {
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.StartMetricsEndpoints().ok());
  const auto ports = cluster.MetricsPorts();
  ASSERT_EQ(ports.size(), 2u);

  for (const uint16_t port : ports) {
    const std::string health = HttpGet(port, "/healthz");
    EXPECT_EQ(health.rfind("HTTP/1.0 200", 0), 0u) << health;
    EXPECT_NE(health.find("application/json"), std::string::npos);
    EXPECT_NE(health.find("\"role\":\"live\""), std::string::npos) << health;
    EXPECT_NE(health.find("\"mode\":\"srca-rep\""), std::string::npos);
    EXPECT_NE(health.find("\"view_members\":2"), std::string::npos);
    // Full replication: no held-partition subset.
    EXPECT_NE(health.find("\"held_partitions\":-1"), std::string::npos);
  }

  // The body must match what GetHealth() reports directly.
  const auto health = cluster.replica(0)->GetHealth();
  EXPECT_EQ(health.role, "live");
  EXPECT_EQ(health.view_members, 2u);

  cluster.StopMetricsEndpoints();
}

TEST(ClusterMetricsEndpointsTest, HealthzReflectsShutdown) {
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  cluster.replica(1)->Shutdown();
  const auto health = cluster.replica(1)->GetHealth();
  EXPECT_EQ(health.role, "shutdown");
  EXPECT_NE(cluster.replica(1)->HealthJson().find("\"role\":\"shutdown\""),
            std::string::npos);
}

TEST(ClusterMetricsEndpointsTest, ProfileAndMetricsJsonEndpoints) {
  obs::Profiler::Global().StartSampling(std::chrono::microseconds(500));
  cluster::ClusterOptions options;
  options.num_replicas = 2;
  cluster::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster
                  .ExecuteEverywhere(
                      "CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  auto* mw = cluster.replica(0);
  auto handle = std::move(mw->BeginTxn()).value();
  ASSERT_TRUE(mw->Execute(handle, "INSERT INTO t VALUES (1, 1)").ok());
  ASSERT_TRUE(mw->CommitTxn(handle).ok());
  cluster.Quiesce();

  ASSERT_TRUE(cluster.StartMetricsEndpoints().ok());
  const auto ports = cluster.MetricsPorts();
  ASSERT_EQ(ports.size(), 2u);

  const std::string profile = HttpGet(ports[0], "/profile");
  EXPECT_EQ(profile.rfind("HTTP/1.0 200", 0), 0u) << profile;
  EXPECT_NE(profile.find("\"sampling\":true"), std::string::npos);
  EXPECT_NE(profile.find("\"sections\""), std::string::npos);

  // /metrics.json serves the registry snapshot the bench scraper
  // consumes: it must parse via MetricsSnapshot::FromJson and contain
  // the commit counter the transaction above bumped.
  const std::string body = HttpGet(ports[0], "/metrics.json");
  EXPECT_EQ(body.rfind("HTTP/1.0 200", 0), 0u);
  const size_t split = body.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  auto snap = obs::MetricsSnapshot::FromJson(body.substr(split + 4));
  ASSERT_TRUE(snap.ok()) << snap.status().message();
  EXPECT_EQ(snap.value().counters.at("mw.committed"), 1u);
  // The lock-contention families registered at construction are there.
  EXPECT_GT(snap.value().counters.at("mw.lock.tocommit.acquires"), 0u);

  cluster.StopMetricsEndpoints();
  obs::Profiler::Global().StopSampling();
}

}  // namespace
}  // namespace sirep
