// Tests for the workload generators and the load-generator runner.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "workload/runner.h"
#include "workload/simple_workloads.h"
#include "workload/tpcw.h"

namespace sirep::workload {
namespace {

using cluster::Cluster;
using cluster::ClusterOptions;

TEST(TpcwTest, LoadCreatesSchemaAndData) {
  engine::Database db;
  TpcwOptions options;
  options.num_items = 100;
  options.num_ebs = 8;
  TpcwWorkload tpcw(options);
  ASSERT_TRUE(tpcw.Load(&db).ok());

  auto items = db.ExecuteAutoCommit("SELECT COUNT(*) FROM item");
  EXPECT_EQ(items.value().rows[0][0].AsInt(), 100);
  auto carts = db.ExecuteAutoCommit("SELECT COUNT(*) FROM shopping_cart");
  EXPECT_EQ(carts.value().rows[0][0].AsInt(), 8);
  auto customers = db.ExecuteAutoCommit("SELECT COUNT(*) FROM customer");
  EXPECT_EQ(customers.value().rows[0][0].AsInt(),
            8 * options.customers_per_eb);
  // 8 tables exist.
  EXPECT_EQ(db.engine().TableNames().size(), 8u);
}

TEST(TpcwTest, LoadIsDeterministicAcrossReplicas) {
  engine::Database db1, db2;
  TpcwOptions options;
  options.num_items = 50;
  options.num_ebs = 4;
  TpcwWorkload w1(options), w2(options);
  ASSERT_TRUE(w1.Load(&db1).ok());
  ASSERT_TRUE(w2.Load(&db2).ok());
  auto r1 = db1.ExecuteAutoCommit("SELECT * FROM item ORDER BY i_id");
  auto r2 = db2.ExecuteAutoCommit("SELECT * FROM item ORDER BY i_id");
  ASSERT_EQ(r1.value().NumRows(), r2.value().NumRows());
  for (size_t i = 0; i < r1.value().rows.size(); ++i) {
    EXPECT_EQ(r1.value().rows[i], r2.value().rows[i]);
  }
}

TEST(TpcwTest, MixIsRoughlyHalfUpdates) {
  TpcwWorkload tpcw;
  Prng prng(123);
  int updates = 0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    auto txn = tpcw.Next(prng);
    EXPECT_FALSE(txn.statements.empty());
    EXPECT_FALSE(txn.tables.empty());
    if (!txn.read_only) ++updates;
  }
  // Ordering mix: 50% updates (paper).
  EXPECT_NEAR(static_cast<double>(updates) / kSamples, 0.5, 0.05);
}

TEST(TpcwTest, TransactionsExecuteAgainstLoadedDb) {
  engine::Database db;
  TpcwOptions options;
  options.num_items = 100;
  options.num_ebs = 8;
  TpcwWorkload tpcw(options);
  ASSERT_TRUE(tpcw.Load(&db).ok());

  Prng prng(7);
  engine::Session session(&db);
  session.SetAutoCommit(false);
  int ok_count = 0;
  for (int i = 0; i < 50; ++i) {
    auto txn = tpcw.Next(prng);
    bool ok = true;
    for (const auto& [sql, params] : txn.statements) {
      auto r = session.Execute(sql, params);
      if (!r.ok()) {
        ok = false;
        session.Rollback();
        break;
      }
    }
    if (ok && session.Commit().ok()) ++ok_count;
  }
  // Single session, no concurrency: everything should commit.
  EXPECT_EQ(ok_count, 50);
}

TEST(LargeDbTest, LoadAndMix) {
  engine::Database db;
  LargeDbWorkload::Options options;
  options.rows_per_table = 50;
  LargeDbWorkload workload(options);
  ASSERT_TRUE(workload.Load(&db).ok());
  EXPECT_EQ(db.engine().TableNames().size(), 10u);

  Prng prng(5);
  int updates = 0;
  for (int i = 0; i < 1000; ++i) {
    auto txn = workload.Next(prng);
    if (!txn.read_only) {
      ++updates;
      EXPECT_EQ(txn.statements.size(), 10u);
    } else {
      EXPECT_EQ(txn.statements.size(), 1u);
    }
  }
  EXPECT_NEAR(updates / 1000.0, 0.2, 0.05);  // 20/80 mix
}

TEST(UpdateIntensiveTest, AllUpdatesThreeTables) {
  engine::Database db;
  UpdateIntensiveWorkload workload;
  ASSERT_TRUE(workload.Load(&db).ok());
  Prng prng(11);
  for (int i = 0; i < 200; ++i) {
    auto txn = workload.Next(prng);
    EXPECT_FALSE(txn.read_only);
    EXPECT_EQ(txn.statements.size(), 10u);
    EXPECT_EQ(txn.tables.size(), 3u);  // paper: 3 tables per transaction
    // Declared tables are distinct.
    EXPECT_NE(txn.tables[0], txn.tables[1]);
    EXPECT_NE(txn.tables[1], txn.tables[2]);
    EXPECT_NE(txn.tables[0], txn.tables[2]);
  }
}

TEST(RunnerTest, SessionExecutorRunsLoad) {
  engine::Database db;
  UpdateIntensiveWorkload::Options wopt;
  wopt.rows_per_table = 50;
  UpdateIntensiveWorkload workload(wopt);
  ASSERT_TRUE(workload.Load(&db).ok());

  LoadOptions options;
  options.offered_tps = 200;
  options.clients = 4;
  options.warmup = std::chrono::milliseconds(100);
  options.duration = std::chrono::milliseconds(500);
  auto metrics = RunLoad(
      workload,
      [&](size_t) { return std::make_unique<SessionExecutor>(&db); },
      options);
  EXPECT_GT(metrics.committed, 10u);
  EXPECT_GT(metrics.update_ms.count(), 0u);
  EXPECT_GT(metrics.achieved_tps, 0.0);
}

TEST(RunnerTest, ConnectionExecutorOnCluster) {
  ClusterOptions copt;
  copt.num_replicas = 2;
  Cluster cluster(copt);
  ASSERT_TRUE(cluster.Start().ok());
  UpdateIntensiveWorkload::Options wopt;
  wopt.rows_per_table = 50;
  UpdateIntensiveWorkload workload(wopt);
  ASSERT_TRUE(cluster
                  .LoadEverywhere([&](engine::Database* db) {
                    return workload.Load(db);
                  })
                  .ok());

  LoadOptions options;
  options.offered_tps = 100;
  options.clients = 4;
  options.warmup = std::chrono::milliseconds(100);
  options.duration = std::chrono::milliseconds(600);
  auto metrics = RunLoad(
      workload,
      [&](size_t i) -> std::unique_ptr<TxnExecutor> {
        client::ConnectionOptions copts;
        copts.seed = i + 1;
        auto conn = cluster.Connect(copts);
        if (!conn.ok()) return nullptr;
        return std::make_unique<ConnectionExecutor>(std::move(conn).value());
      },
      options);
  EXPECT_GT(metrics.committed, 5u);
  EXPECT_EQ(metrics.lost, 0u);
  cluster.Quiesce();

  // Replicated run: both replicas converge.
  for (int t = 0; t < 10; ++t) {
    const std::string sql =
        "SELECT SUM(v) FROM ut" + std::to_string(t);
    auto a = cluster.db(0)->ExecuteAutoCommit(sql);
    auto b = cluster.db(1)->ExecuteAutoCommit(sql);
    EXPECT_EQ(a.value().rows[0][0].AsInt(), b.value().rows[0][0].AsInt())
        << sql;
  }
}

TEST(RunnerTest, WarmupExcludedFromSamples) {
  engine::Database db;
  UpdateIntensiveWorkload::Options wopt;
  wopt.rows_per_table = 50;
  UpdateIntensiveWorkload workload(wopt);
  ASSERT_TRUE(workload.Load(&db).ok());
  LoadOptions options;
  options.offered_tps = 1000;
  options.clients = 2;
  options.warmup = std::chrono::milliseconds(400);
  options.duration = std::chrono::milliseconds(200);
  auto metrics = RunLoad(
      workload,
      [&](size_t) { return std::make_unique<SessionExecutor>(&db); },
      options);
  // attempted counts only post-warmup transactions: plausibly ~200tps*0.2s
  EXPECT_LT(metrics.attempted, 1000u);
}

}  // namespace
}  // namespace sirep::workload
