// Tests for the storage engine's snapshot-isolation semantics: snapshot
// reads, first-updater-wins conflicts, blocking writers, read-your-writes,
// and the writeset extraction/application primitives the middleware needs.

#include "storage/storage_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace sirep::storage {
namespace {

using sql::Value;

sql::Key K(int64_t k) { return sql::Key{{Value::Int(k)}}; }
sql::Row R(int64_t k, int64_t v) { return {Value::Int(k), Value::Int(v)}; }

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sql::Schema schema(
        {{"k", sql::ValueType::kInt}, {"v", sql::ValueType::kInt}}, {0});
    ASSERT_TRUE(engine_.CreateTable("t", schema).ok());
    // Seed a few rows.
    auto txn = engine_.Begin();
    for (int64_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE(engine_.Insert(txn, "t", R(i, 100 * i)).ok());
    }
    ASSERT_TRUE(engine_.Commit(txn).ok());
  }

  int64_t MustReadV(const TransactionPtr& txn, int64_t k) {
    auto r = engine_.Read(txn, "t", K(k));
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.value().has_value());
    return r.value()->at(1).AsInt();
  }

  StorageEngine engine_;
};

TEST_F(StorageEngineTest, CreateTableValidation) {
  EXPECT_EQ(engine_.CreateTable("t", sql::Schema({{"x"}}, {0})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine_.CreateTable("nokey", sql::Schema({{"x"}}, {})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_.TableNames(), std::vector<std::string>{"t"});
}

TEST_F(StorageEngineTest, SnapshotReadIgnoresLaterCommit) {
  auto reader = engine_.Begin();
  EXPECT_EQ(MustReadV(reader, 1), 100);

  auto writer = engine_.Begin();
  ASSERT_TRUE(engine_.Update(writer, "t", R(1, 999)).ok());
  ASSERT_TRUE(engine_.Commit(writer).ok());

  // The reader's snapshot predates the commit.
  EXPECT_EQ(MustReadV(reader, 1), 100);

  // A fresh transaction sees the new value.
  auto fresh = engine_.Begin();
  EXPECT_EQ(MustReadV(fresh, 1), 999);
}

TEST_F(StorageEngineTest, FirstUpdaterWins) {
  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Update(t1, "t", R(1, 111)).ok());
  ASSERT_TRUE(engine_.Commit(t1).ok());

  // t2 is concurrent with t1 and writes the same tuple: version check
  // fails, transaction aborts.
  Status st = engine_.Update(t2, "t", R(1, 222));
  EXPECT_EQ(st.code(), StatusCode::kConflict);
  EXPECT_EQ(t2->state(), TxnState::kAborted);
  EXPECT_GE(engine_.stats().ww_conflicts, 1u);
}

TEST_F(StorageEngineTest, BlockedWriterAbortsWhenHolderCommits) {
  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Update(t1, "t", R(2, 1)).ok());

  std::atomic<bool> blocked_result_conflict{false};
  std::thread blocked([&] {
    // Blocks on t1's lock; when t1 commits, the version check fails.
    Status st = engine_.Update(t2, "t", R(2, 2));
    blocked_result_conflict.store(st.code() == StatusCode::kConflict);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(engine_.Commit(t1).ok());
  blocked.join();
  EXPECT_TRUE(blocked_result_conflict.load());
}

TEST_F(StorageEngineTest, BlockedWriterProceedsWhenHolderAborts) {
  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Update(t1, "t", R(2, 1)).ok());

  std::atomic<bool> update_ok{false};
  std::thread blocked([&] {
    update_ok.store(engine_.Update(t2, "t", R(2, 2)).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine_.Abort(t1);
  blocked.join();
  EXPECT_TRUE(update_ok.load());
  EXPECT_TRUE(engine_.Commit(t2).ok());
  auto check = engine_.Begin();
  EXPECT_EQ(MustReadV(check, 2), 2);
}

TEST_F(StorageEngineTest, ReadYourOwnWrites) {
  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Update(txn, "t", R(1, 42)).ok());
  EXPECT_EQ(MustReadV(txn, 1), 42);
  ASSERT_TRUE(engine_.Insert(txn, "t", R(10, 1000)).ok());
  EXPECT_EQ(MustReadV(txn, 10), 1000);
  ASSERT_TRUE(engine_.Delete(txn, "t", K(2)).ok());
  auto r = engine_.Read(txn, "t", K(2));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().has_value());
  engine_.Abort(txn);
}

TEST_F(StorageEngineTest, ScanMergesOwnWrites) {
  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Update(txn, "t", R(3, -3)).ok());
  ASSERT_TRUE(engine_.Delete(txn, "t", K(4)).ok());
  ASSERT_TRUE(engine_.Insert(txn, "t", R(6, 600)).ok());

  std::vector<std::pair<int64_t, int64_t>> rows;
  ASSERT_TRUE(engine_
                  .Scan(txn, "t",
                        [&](const sql::Key& k, const sql::Row& row) {
                          rows.emplace_back(k.parts[0].AsInt(),
                                            row[1].AsInt());
                        })
                  .ok());
  std::vector<std::pair<int64_t, int64_t>> expected = {
      {1, 100}, {2, 200}, {3, -3}, {5, 500}, {6, 600}};
  EXPECT_EQ(rows, expected);
  engine_.Abort(txn);
}

TEST_F(StorageEngineTest, AbortDiscardsEverything) {
  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Update(txn, "t", R(1, 7)).ok());
  ASSERT_TRUE(engine_.Insert(txn, "t", R(11, 7)).ok());
  engine_.Abort(txn);

  auto check = engine_.Begin();
  EXPECT_EQ(MustReadV(check, 1), 100);
  auto r = engine_.Read(check, "t", K(11));
  EXPECT_FALSE(r.value().has_value());
  // The lock must be free again.
  auto t2 = engine_.Begin();
  EXPECT_TRUE(engine_.Update(t2, "t", R(1, 8)).ok());
  EXPECT_TRUE(engine_.Commit(t2).ok());
}

TEST_F(StorageEngineTest, DuplicateInsertRejected) {
  auto txn = engine_.Begin();
  Status st = engine_.Insert(txn, "t", R(1, 0));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(txn->state(), TxnState::kAborted);
}

TEST_F(StorageEngineTest, ConcurrentInsertSameKeyConflicts) {
  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Insert(t1, "t", R(20, 1)).ok());
  ASSERT_TRUE(engine_.Commit(t1).ok());
  Status st = engine_.Insert(t2, "t", R(20, 2));
  // Concurrent committed write to the same key: conflict (first-updater).
  EXPECT_EQ(st.code(), StatusCode::kConflict);
}

TEST_F(StorageEngineTest, UpdateInvisibleTupleIsNotFoundNotAbort) {
  auto txn = engine_.Begin();
  Status st = engine_.Update(txn, "t", R(99, 1));
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(txn->state(), TxnState::kActive);  // statement-level miss only
  ASSERT_TRUE(engine_.Commit(txn).ok());
}

TEST_F(StorageEngineTest, DeleteThenReinsertInOtherTxn) {
  auto t1 = engine_.Begin();
  ASSERT_TRUE(engine_.Delete(t1, "t", K(5)).ok());
  ASSERT_TRUE(engine_.Commit(t1).ok());

  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Insert(t2, "t", R(5, 555)).ok());
  ASSERT_TRUE(engine_.Commit(t2).ok());

  auto check = engine_.Begin();
  EXPECT_EQ(MustReadV(check, 5), 555);
}

TEST_F(StorageEngineTest, WriteSetExtractionPreCommit) {
  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Update(txn, "t", R(1, 11)).ok());
  ASSERT_TRUE(engine_.Delete(txn, "t", K(2)).ok());
  ASSERT_TRUE(engine_.Insert(txn, "t", R(30, 3)).ok());

  // Extraction happens *before* commit (the middleware validates first).
  auto ws = engine_.ExtractWriteSet(txn);
  EXPECT_EQ(txn->state(), TxnState::kActive);
  ASSERT_EQ(ws->size(), 3u);
  EXPECT_EQ(ws->entries()[0].op, WriteOp::kUpdate);
  EXPECT_EQ(ws->entries()[1].op, WriteOp::kDelete);
  EXPECT_EQ(ws->entries()[2].op, WriteOp::kInsert);
  ASSERT_TRUE(engine_.Commit(txn).ok());
}

TEST_F(StorageEngineTest, ApplyWriteSetReplaysAtAnotherEngine) {
  // Extract at this engine, apply at a second "replica".
  StorageEngine replica;
  sql::Schema schema(
      {{"k", sql::ValueType::kInt}, {"v", sql::ValueType::kInt}}, {0});
  ASSERT_TRUE(replica.CreateTable("t", schema).ok());
  {
    auto seed = replica.Begin();
    for (int64_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE(replica.Insert(seed, "t", R(i, 100 * i)).ok());
    }
    ASSERT_TRUE(replica.Commit(seed).ok());
  }

  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Update(txn, "t", R(1, 77)).ok());
  ASSERT_TRUE(engine_.Delete(txn, "t", K(2)).ok());
  ASSERT_TRUE(engine_.Insert(txn, "t", R(9, 900)).ok());
  auto ws = engine_.ExtractWriteSet(txn);
  ASSERT_TRUE(engine_.Commit(txn).ok());

  auto apply = replica.Begin();
  ASSERT_TRUE(replica.ApplyWriteSet(apply, *ws).ok());
  ASSERT_TRUE(replica.Commit(apply).ok());

  auto check = replica.Begin();
  auto r1 = replica.Read(check, "t", K(1));
  EXPECT_EQ(r1.value()->at(1).AsInt(), 77);
  EXPECT_FALSE(replica.Read(check, "t", K(2)).value().has_value());
  EXPECT_EQ(replica.Read(check, "t", K(9)).value()->at(1).AsInt(), 900);
}

TEST_F(StorageEngineTest, EmptyCommitConsumesNoTimestamp) {
  const Timestamp before = engine_.last_committed();
  auto txn = engine_.Begin();
  EXPECT_EQ(MustReadV(txn, 1), 100);
  ASSERT_TRUE(engine_.Commit(txn).ok());
  EXPECT_EQ(engine_.last_committed(), before);
}

TEST_F(StorageEngineTest, UseAfterTerminationRejected) {
  auto txn = engine_.Begin();
  ASSERT_TRUE(engine_.Commit(txn).ok());
  EXPECT_FALSE(engine_.Read(txn, "t", K(1)).ok());
  EXPECT_FALSE(engine_.Update(txn, "t", R(1, 0)).ok());
  EXPECT_FALSE(engine_.Commit(txn).ok());

  auto txn2 = engine_.Begin();
  engine_.Abort(txn2);
  EXPECT_EQ(engine_.Update(txn2, "t", R(1, 0)).code(), StatusCode::kAborted);
  engine_.Abort(txn2);  // idempotent
}

TEST_F(StorageEngineTest, DeadlockBetweenWritersResolved) {
  auto t1 = engine_.Begin();
  auto t2 = engine_.Begin();
  ASSERT_TRUE(engine_.Update(t1, "t", R(1, 1)).ok());
  ASSERT_TRUE(engine_.Update(t2, "t", R(2, 2)).ok());

  std::atomic<int> failures{0};
  std::thread a([&] {
    Status st = engine_.Update(t1, "t", R(2, 1));
    if (!st.ok()) failures.fetch_add(1);
    if (st.ok()) engine_.Commit(t1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread b([&] {
    Status st = engine_.Update(t2, "t", R(1, 2));
    if (!st.ok()) failures.fetch_add(1);
    if (st.ok()) engine_.Commit(t2);
  });
  a.join();
  b.join();
  // At least one side was aborted (deadlock victim or version check after
  // the winner committed); both threads terminated.
  EXPECT_GE(failures.load(), 1);
}

TEST_F(StorageEngineTest, ConcurrentDisjointWritersAllCommit) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> commits{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto txn = engine_.Begin();
      if (engine_.Insert(txn, "t", R(100 + i, i)).ok() &&
          engine_.Commit(txn).ok()) {
        commits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(commits.load(), kThreads);
  auto check = engine_.Begin();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(MustReadV(check, 100 + i), i);
  }
}

TEST_F(StorageEngineTest, HotKeyIncrementsAreNeverLost) {
  // SI forbids lost updates: concurrent read-modify-write on one row means
  // all but one conflicting transaction abort. The final value must equal
  // the number of successful commits.
  constexpr int kThreads = 6;
  constexpr int kAttempts = 30;
  std::atomic<int> commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        auto txn = engine_.Begin();
        auto r = engine_.Read(txn, "t", K(1));
        if (!r.ok() || !r.value().has_value()) {
          engine_.Abort(txn);
          continue;
        }
        const int64_t v = r.value()->at(1).AsInt();
        if (!engine_.Update(txn, "t", R(1, v + 1)).ok()) continue;
        if (engine_.Commit(txn).ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto check = engine_.Begin();
  EXPECT_EQ(MustReadV(check, 1), 100 + commits.load());
}

}  // namespace
}  // namespace sirep::storage
