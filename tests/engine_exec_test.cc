// Unit tests for expression evaluation and key-lookup extraction.

#include "engine/exec.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace sirep::engine {
namespace {

using sql::Value;

// Parses `expr` by wrapping it in a SELECT and pulling out the WHERE tree.
sql::Statement ParseWhere(const std::string& expr) {
  auto stmt = sql::Parse("SELECT * FROM t WHERE " + expr);
  EXPECT_TRUE(stmt.ok()) << expr;
  return std::move(stmt).value();
}

sql::Schema TestSchema() {
  return sql::Schema({{"a", sql::ValueType::kInt},
                      {"b", sql::ValueType::kInt},
                      {"s", sql::ValueType::kString},
                      {"d", sql::ValueType::kDouble}},
                     {0, 1});
}

Value EvalOn(const std::string& expr, const sql::Row& row,
             const std::vector<Value>& params = {}) {
  auto stmt = ParseWhere(expr);
  auto schema = TestSchema();
  auto result = Eval(*stmt.select->where, &schema, &row, params);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status();
  return result.ok() ? result.value() : Value::Null();
}

const sql::Row kRow = {Value::Int(3), Value::Int(7), Value::String("abc"),
                       Value::Double(1.5)};

TEST(EvalTest, Comparisons) {
  EXPECT_TRUE(EvalOn("a = 3", kRow).AsBool());
  EXPECT_FALSE(EvalOn("a = 4", kRow).AsBool());
  EXPECT_TRUE(EvalOn("a < b", kRow).AsBool());
  EXPECT_TRUE(EvalOn("b >= 7", kRow).AsBool());
  EXPECT_TRUE(EvalOn("s = 'abc'", kRow).AsBool());
  EXPECT_TRUE(EvalOn("a <> b", kRow).AsBool());
  EXPECT_TRUE(EvalOn("d > 1", kRow).AsBool());  // double vs int
}

TEST(EvalTest, BooleanLogicShortCircuits) {
  EXPECT_TRUE(EvalOn("a = 3 AND b = 7", kRow).AsBool());
  EXPECT_FALSE(EvalOn("a = 3 AND b = 8", kRow).AsBool());
  EXPECT_TRUE(EvalOn("a = 9 OR b = 7", kRow).AsBool());
  EXPECT_TRUE(EvalOn("NOT a = 9", kRow).AsBool());
  // Short circuit: the right side would error (string compare against
  // arithmetic is fine; use division by zero to prove non-evaluation).
  EXPECT_FALSE(EvalOn("a = 9 AND a / 0 = 1", kRow).AsBool());
}

TEST(EvalTest, Arithmetic) {
  EXPECT_TRUE(EvalOn("a + b = 10", kRow).AsBool());
  EXPECT_TRUE(EvalOn("b - a = 4", kRow).AsBool());
  EXPECT_TRUE(EvalOn("a * b = 21", kRow).AsBool());
  EXPECT_TRUE(EvalOn("b / a = 2", kRow).AsBool());       // int division
  EXPECT_TRUE(EvalOn("d * 2 = 3.0", kRow).AsBool());     // double promote
  EXPECT_TRUE(EvalOn("-a = -3", kRow).AsBool());
  EXPECT_TRUE(EvalOn("1 + 2 * 3 = 7", kRow).AsBool());
}

TEST(EvalTest, DivisionByZeroIsError) {
  auto stmt = ParseWhere("a / 0 = 1");
  auto schema = TestSchema();
  auto result = Eval(*stmt.select->where, &schema, &kRow, {});
  EXPECT_FALSE(result.ok());
}

TEST(EvalTest, NullSemantics) {
  sql::Row row = {Value::Int(1), Value::Null(), Value::Null(),
                  Value::Double(0)};
  // Comparison with NULL is false.
  EXPECT_FALSE(EvalOn("b = 1", row).AsBool());
  EXPECT_FALSE(EvalOn("b <> 1", row).AsBool());
  // IS NULL / IS NOT NULL.
  EXPECT_TRUE(EvalOn("b IS NULL", row).AsBool());
  EXPECT_FALSE(EvalOn("a IS NULL", row).AsBool());
  EXPECT_TRUE(EvalOn("a IS NOT NULL", row).AsBool());
  // Arithmetic with NULL yields NULL, so the comparison is false.
  EXPECT_FALSE(EvalOn("b + 1 = 2", row).AsBool());
}

TEST(EvalTest, Parameters) {
  EXPECT_TRUE(
      EvalOn("a = ? AND s = ?", kRow, {Value::Int(3), Value::String("abc")})
          .AsBool());
  // Missing parameter is an error.
  auto stmt = ParseWhere("a = ?");
  auto schema = TestSchema();
  EXPECT_FALSE(Eval(*stmt.select->where, &schema, &kRow, {}).ok());
}

TEST(EvalTest, UnknownColumnIsError) {
  auto stmt = ParseWhere("zz = 1");
  auto schema = TestSchema();
  EXPECT_FALSE(Eval(*stmt.select->where, &schema, &kRow, {}).ok());
}

TEST(EvalTest, MatchesHelper) {
  auto stmt = ParseWhere("a = 3");
  auto schema = TestSchema();
  auto m = Matches(stmt.select->where.get(), schema, kRow, {});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m.value());
  // Null predicate accepts everything.
  auto all = Matches(nullptr, schema, kRow, {});
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all.value());
}

TEST(KeyLookupTest, FullKeyEqualityExtracted) {
  auto schema = TestSchema();  // composite key (a, b)
  auto stmt = ParseWhere("a = 3 AND b = 7");
  auto key = TryExtractKeyLookup(schema, stmt.select->where.get(), {});
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->parts[0].AsInt(), 3);
  EXPECT_EQ(key->parts[1].AsInt(), 7);
}

TEST(KeyLookupTest, ParamsAndReversedOperandsWork) {
  auto schema = TestSchema();
  auto stmt = ParseWhere("3 = a AND b = ?");
  auto key = TryExtractKeyLookup(schema, stmt.select->where.get(),
                                 {Value::Int(9)});
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->parts[1].AsInt(), 9);
}

TEST(KeyLookupTest, PartialKeyNotExtracted) {
  auto schema = TestSchema();
  auto stmt = ParseWhere("a = 3");  // b unbound
  EXPECT_FALSE(
      TryExtractKeyLookup(schema, stmt.select->where.get(), {}).has_value());
}

TEST(KeyLookupTest, NonEqualityNotExtracted) {
  auto schema = TestSchema();
  for (const char* expr : {"a = 3 AND b > 7", "a = 3 OR b = 7",
                           "a = 3 AND NOT b = 7", "a = 3 AND b = b"}) {
    auto stmt = ParseWhere(expr);
    EXPECT_FALSE(
        TryExtractKeyLookup(schema, stmt.select->where.get(), {}).has_value())
        << expr;
  }
}

TEST(KeyLookupTest, ExtraEqualitiesStillExtract) {
  auto schema = TestSchema();
  auto stmt = ParseWhere("a = 3 AND b = 7 AND s = 'x'");
  EXPECT_TRUE(
      TryExtractKeyLookup(schema, stmt.select->where.get(), {}).has_value());
}

}  // namespace
}  // namespace sirep::engine
