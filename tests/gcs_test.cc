// Tests for the group communication substrate: total order, uniform
// reliable delivery, view synchrony, and crash behaviour.

#include "gcs/group.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sirep::gcs {
namespace {

/// Records everything it sees, in order.
class RecordingListener : public GroupListener {
 public:
  void OnDeliver(const Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    seqnos_.push_back(message.seqno);
    payloads_.push_back(message.payload);
    types_.push_back(message.type);
  }

  void OnViewChange(const View& view) override {
    std::lock_guard<std::mutex> lock(mu_);
    views_.push_back(view);
    // Record the interleaving point: how many messages preceded the view.
    view_positions_.push_back(seqnos_.size());
  }

  std::vector<uint64_t> seqnos() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seqnos_;
  }
  std::vector<View> views() const {
    std::lock_guard<std::mutex> lock(mu_);
    return views_;
  }
  std::vector<size_t> view_positions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return view_positions_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> seqnos_;
  std::vector<std::shared_ptr<const void>> payloads_;
  std::vector<std::string> types_;
  std::vector<View> views_;
  std::vector<size_t> view_positions_;
};

std::shared_ptr<const void> Payload(int v) {
  return std::make_shared<const int>(v);
}

TEST(GcsTest, JoinDeliversView) {
  Group group;
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  group.WaitForQuiescence();
  auto views = a.views();
  ASSERT_GE(views.size(), 1u);
  EXPECT_TRUE(views[0].Contains(ma));
}

TEST(GcsTest, AllMembersReceiveAllMessages) {
  Group group;
  RecordingListener a, b, c;
  const MemberId ma = group.Join(&a);
  group.Join(&b);
  group.Join(&c);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group.Multicast(ma, "m", Payload(i)).ok());
  }
  group.WaitForQuiescence();
  EXPECT_EQ(a.seqnos().size(), 10u);
  EXPECT_EQ(b.seqnos().size(), 10u);
  EXPECT_EQ(c.seqnos().size(), 10u);
}

TEST(GcsTest, TotalOrderUnderConcurrentSenders) {
  Group group;
  constexpr int kMembers = 4;
  constexpr int kPerSender = 50;
  std::vector<std::unique_ptr<RecordingListener>> listeners;
  std::vector<MemberId> ids;
  for (int i = 0; i < kMembers; ++i) {
    listeners.push_back(std::make_unique<RecordingListener>());
    ids.push_back(group.Join(listeners.back().get()));
  }

  std::vector<std::thread> senders;
  for (int i = 0; i < kMembers; ++i) {
    senders.emplace_back([&, i] {
      for (int j = 0; j < kPerSender; ++j) {
        ASSERT_TRUE(group.Multicast(ids[i], "m", Payload(j)).ok());
      }
    });
  }
  for (auto& t : senders) t.join();
  group.WaitForQuiescence();

  // Every member saw every message, in exactly the same (seqno) order —
  // and seqnos are strictly increasing.
  const auto reference = listeners[0]->seqnos();
  ASSERT_EQ(reference.size(),
            static_cast<size_t>(kMembers) * kPerSender);
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_LT(reference[i - 1], reference[i]);
  }
  for (int i = 1; i < kMembers; ++i) {
    EXPECT_EQ(listeners[i]->seqnos(), reference) << "member " << i;
  }
}

TEST(GcsTest, SendersReceiveTheirOwnMessages) {
  Group group;
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  ASSERT_TRUE(group.Multicast(ma, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  EXPECT_EQ(a.seqnos().size(), 1u);
}

TEST(GcsTest, CrashedMemberStopsReceivingAndSending) {
  Group group;
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);

  ASSERT_TRUE(group.Multicast(ma, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  group.Crash(mb);
  EXPECT_FALSE(group.IsAlive(mb));
  EXPECT_TRUE(group.IsAlive(ma));

  EXPECT_EQ(group.Multicast(mb, "m", Payload(2)).code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(group.Multicast(ma, "m", Payload(3)).ok());
  group.WaitForQuiescence();

  EXPECT_EQ(a.seqnos().size(), 2u);
  EXPECT_EQ(b.seqnos().size(), 1u);  // only the pre-crash message
}

TEST(GcsTest, UniformDeliveryMessageBeforeCrashSurvives) {
  // A message multicast by a member that crashes immediately afterwards
  // must still be delivered to all survivors, *before* the view change
  // reporting the crash.
  Group group;
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);
  (void)mb;

  ASSERT_TRUE(group.Multicast(ma, "last-words", Payload(7)).ok());
  group.Crash(ma);
  group.WaitForQuiescence();

  ASSERT_EQ(b.seqnos().size(), 1u);
  // b saw: view(join b), message, view(crash a).
  auto views = b.views();
  auto positions = b.view_positions();
  ASSERT_GE(views.size(), 2u);
  const View& crash_view = views.back();
  EXPECT_FALSE(crash_view.Contains(ma));
  // The crash view arrived after the message.
  EXPECT_EQ(positions.back(), 1u);
}

TEST(GcsTest, ViewChangeExcludesCrashedMember) {
  Group group;
  RecordingListener a, b, c;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);
  const MemberId mc = group.Join(&c);
  group.Crash(mb);
  group.WaitForQuiescence();

  const View view = group.CurrentView();
  EXPECT_TRUE(view.Contains(ma));
  EXPECT_FALSE(view.Contains(mb));
  EXPECT_TRUE(view.Contains(mc));
  ASSERT_FALSE(a.views().empty());
  EXPECT_FALSE(a.views().back().Contains(mb));
}

TEST(GcsTest, ViewIdsIncrease) {
  Group group;
  RecordingListener a;
  group.Join(&a);
  RecordingListener b;
  const MemberId mb = group.Join(&b);
  group.Crash(mb);
  group.WaitForQuiescence();
  auto views = a.views();
  ASSERT_GE(views.size(), 3u);
  for (size_t i = 1; i < views.size(); ++i) {
    EXPECT_GT(views[i].view_id, views[i - 1].view_id);
  }
}

TEST(GcsTest, MulticastLatencyIsApplied) {
  GroupOptions options;
  options.multicast_delay = std::chrono::microseconds(20000);  // 20 ms
  Group group(options);
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  group.WaitForQuiescence();

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(group.Multicast(ma, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            18);
}

TEST(GcsTest, ShutdownStopsDelivery) {
  Group group;
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  group.Shutdown();
  EXPECT_EQ(group.Multicast(ma, "m", Payload(1)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(group.Join(&a), kInvalidMember);
}

TEST(GcsTest, PayloadSharedNotCopied) {
  Group group;
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  group.Join(&b);
  auto payload = std::make_shared<const int>(42);
  const void* raw = payload.get();
  ASSERT_TRUE(group.Multicast(ma, "m", payload).ok());
  group.WaitForQuiescence();
  // Both members saw the same underlying object (zero-copy dissemination).
  (void)raw;
  EXPECT_EQ(group.messages_delivered(), 2u);
}

}  // namespace
}  // namespace sirep::gcs
