// Tests for the group communication substrate: total order, uniform
// reliable delivery, view synchrony, and crash behaviour. The delivery
// guarantees are parameterized over both transports — the in-process
// queues and the TCP sequencer — because the SI-Rep replication protocol
// must behave identically on either (ISSUE 2 / paper §5.2).

#include "gcs/group.h"

#include <gtest/gtest.h>

#include "common/failpoint.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sirep::gcs {
namespace {

/// Records everything it sees, in order.
class RecordingListener : public GroupListener {
 public:
  void OnDeliver(const Message& message) override {
    std::lock_guard<std::mutex> lock(mu_);
    seqnos_.push_back(message.seqno);
    payloads_.push_back(message.payload);
    types_.push_back(message.type);
  }

  void OnViewChange(const View& view) override {
    std::lock_guard<std::mutex> lock(mu_);
    views_.push_back(view);
    // Record the interleaving point: how many messages preceded the view.
    view_positions_.push_back(seqnos_.size());
  }

  std::vector<uint64_t> seqnos() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seqnos_;
  }
  std::vector<std::shared_ptr<const void>> payloads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return payloads_;
  }
  std::vector<View> views() const {
    std::lock_guard<std::mutex> lock(mu_);
    return views_;
  }
  std::vector<size_t> view_positions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return view_positions_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> seqnos_;
  std::vector<std::shared_ptr<const void>> payloads_;
  std::vector<std::string> types_;
  std::vector<View> views_;
  std::vector<size_t> view_positions_;
};

std::shared_ptr<const void> Payload(int v) {
  return std::make_shared<const int>(v);
}

/// Codec for the int payloads used below, for exercising the wire path
/// (as opposed to the stash fallback) on byte-shipping transports.
PayloadCodec IntCodec() {
  PayloadCodec codec;
  codec.encode = [](const void* payload, std::string* out) {
    const int v = *static_cast<const int*>(payload);
    out->assign(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  codec.decode =
      [](const std::string& in) -> Result<std::shared_ptr<const void>> {
    if (in.size() != sizeof(int)) {
      return Status::InvalidArgument("bad int payload");
    }
    int v = 0;
    memcpy(&v, in.data(), sizeof(v));
    return std::shared_ptr<const void>(std::make_shared<const int>(v));
  };
  return codec;
}

const char* KindName(TransportKind kind) {
  return kind == TransportKind::kTcp ? "Tcp" : "InProcess";
}

class TransportGcsTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  GroupOptions Options() const {
    GroupOptions options;
    options.transport = GetParam();
    return options;
  }
};

TEST_P(TransportGcsTest, JoinDeliversView) {
  Group group(Options());
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  group.WaitForQuiescence();
  auto views = a.views();
  ASSERT_GE(views.size(), 1u);
  EXPECT_TRUE(views[0].Contains(ma));
}

TEST_P(TransportGcsTest, AllMembersReceiveAllMessages) {
  Group group(Options());
  RecordingListener a, b, c;
  const MemberId ma = group.Join(&a);
  group.Join(&b);
  group.Join(&c);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group.Multicast(ma, "m", Payload(i)).ok());
  }
  group.WaitForQuiescence();
  EXPECT_EQ(a.seqnos().size(), 10u);
  EXPECT_EQ(b.seqnos().size(), 10u);
  EXPECT_EQ(c.seqnos().size(), 10u);
}

TEST_P(TransportGcsTest, TotalOrderUnderConcurrentSenders) {
  Group group(Options());
  constexpr int kMembers = 4;
  constexpr int kPerSender = 50;
  std::vector<std::unique_ptr<RecordingListener>> listeners;
  std::vector<MemberId> ids;
  for (int i = 0; i < kMembers; ++i) {
    listeners.push_back(std::make_unique<RecordingListener>());
    ids.push_back(group.Join(listeners.back().get()));
  }

  std::vector<std::thread> senders;
  for (int i = 0; i < kMembers; ++i) {
    senders.emplace_back([&, i] {
      for (int j = 0; j < kPerSender; ++j) {
        ASSERT_TRUE(group.Multicast(ids[i], "m", Payload(j)).ok());
      }
    });
  }
  for (auto& t : senders) t.join();
  group.WaitForQuiescence();

  // Every member saw every message, in exactly the same (seqno) order —
  // and seqnos are strictly increasing.
  const auto reference = listeners[0]->seqnos();
  ASSERT_EQ(reference.size(),
            static_cast<size_t>(kMembers) * kPerSender);
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_LT(reference[i - 1], reference[i]);
  }
  for (int i = 1; i < kMembers; ++i) {
    EXPECT_EQ(listeners[i]->seqnos(), reference) << "member " << i;
  }
}

TEST_P(TransportGcsTest, SendersReceiveTheirOwnMessages) {
  Group group(Options());
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  ASSERT_TRUE(group.Multicast(ma, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  EXPECT_EQ(a.seqnos().size(), 1u);
}

TEST_P(TransportGcsTest, CrashedMemberStopsReceivingAndSending) {
  Group group(Options());
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);

  ASSERT_TRUE(group.Multicast(ma, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  group.Crash(mb);
  EXPECT_FALSE(group.IsAlive(mb));
  EXPECT_TRUE(group.IsAlive(ma));

  EXPECT_EQ(group.Multicast(mb, "m", Payload(2)).code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(group.Multicast(ma, "m", Payload(3)).ok());
  group.WaitForQuiescence();

  EXPECT_EQ(a.seqnos().size(), 2u);
  EXPECT_EQ(b.seqnos().size(), 1u);  // only the pre-crash message
}

TEST_P(TransportGcsTest, UniformDeliveryMessageBeforeCrashSurvives) {
  // A message multicast by a member that crashes immediately afterwards
  // must still be delivered to all survivors, *before* the view change
  // reporting the crash.
  Group group(Options());
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);
  (void)mb;

  ASSERT_TRUE(group.Multicast(ma, "last-words", Payload(7)).ok());
  group.Crash(ma);
  group.WaitForQuiescence();

  ASSERT_EQ(b.seqnos().size(), 1u);
  // b saw: view(join b), message, view(crash a).
  auto views = b.views();
  auto positions = b.view_positions();
  ASSERT_GE(views.size(), 2u);
  const View& crash_view = views.back();
  EXPECT_FALSE(crash_view.Contains(ma));
  // The crash view arrived after the message.
  EXPECT_EQ(positions.back(), 1u);
}

TEST_P(TransportGcsTest, ViewChangeExcludesCrashedMember) {
  Group group(Options());
  RecordingListener a, b, c;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);
  const MemberId mc = group.Join(&c);
  group.Crash(mb);
  group.WaitForQuiescence();

  const View view = group.CurrentView();
  EXPECT_TRUE(view.Contains(ma));
  EXPECT_FALSE(view.Contains(mb));
  EXPECT_TRUE(view.Contains(mc));
  ASSERT_FALSE(a.views().empty());
  EXPECT_FALSE(a.views().back().Contains(mb));
}

TEST_P(TransportGcsTest, ViewIdsIncrease) {
  Group group(Options());
  RecordingListener a;
  group.Join(&a);
  RecordingListener b;
  const MemberId mb = group.Join(&b);
  group.Crash(mb);
  group.WaitForQuiescence();
  auto views = a.views();
  ASSERT_GE(views.size(), 3u);
  for (size_t i = 1; i < views.size(); ++i) {
    EXPECT_GT(views[i].view_id, views[i - 1].view_id);
  }
}

TEST_P(TransportGcsTest, ShutdownStopsDelivery) {
  Group group(Options());
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  group.Shutdown();
  EXPECT_EQ(group.Multicast(ma, "m", Payload(1)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(group.Join(&a), kInvalidMember);
}

TEST_P(TransportGcsTest, RegisteredCodecRoundTripsPayloads) {
  // With a codec registered, the TCP transport moves real bytes (the
  // delivered object is a decoded copy); the in-process transport keeps
  // passing the pointer through. Either way the value must survive.
  Group group(Options());
  group.RegisterCodec("int", IntCodec());
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  group.Join(&b);
  ASSERT_TRUE(group.Multicast(ma, "int", Payload(1234)).ok());
  group.WaitForQuiescence();
  auto payloads = b.payloads();
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(*static_cast<const int*>(payloads[0].get()), 1234);
}

// --- Batching ---------------------------------------------------------

TEST_P(TransportGcsTest, BatchingCoalescesFramesAndPreservesOrder) {
  GroupOptions options = Options();
  options.batch_max_count = 8;
  options.batch_window = std::chrono::microseconds(1000000);  // count-driven
  Group group(options);
  group.RegisterCodec("int", IntCodec());
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  group.Join(&b);

  constexpr int kMessages = 32;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(group.Multicast(ma, "int", Payload(i)).ok());
  }
  group.WaitForQuiescence();

  // 32 messages at batch size 8 = exactly 4 frames (the window is too
  // long to fire, so every flush is count-driven).
  EXPECT_EQ(group.frames_sent(), 4u);
  EXPECT_EQ(group.messages_delivered(), 2u * kMessages);

  // Unpacked in order with consecutive per-message seqnos, and the
  // payload values arrive in send order.
  const auto seqnos = a.seqnos();
  const auto payloads = a.payloads();
  ASSERT_EQ(seqnos.size(), static_cast<size_t>(kMessages));
  for (size_t i = 1; i < seqnos.size(); ++i) {
    EXPECT_EQ(seqnos[i], seqnos[i - 1] + 1);
  }
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(*static_cast<const int*>(payloads[i].get()), i);
  }
  EXPECT_EQ(b.seqnos(), seqnos);
}

TEST_P(TransportGcsTest, BatchWindowFlushesWithoutQuiesce) {
  GroupOptions options = Options();
  // Never count-driven; the window is generous so that all three sends
  // land in one batch even under sanitizer slowdown.
  options.batch_max_count = 1000;
  options.batch_window = std::chrono::microseconds(50000);
  Group group(options);
  group.RegisterCodec("int", IntCodec());
  RecordingListener a;
  const MemberId ma = group.Join(&a);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(group.Multicast(ma, "int", Payload(i)).ok());
  }
  // No WaitForQuiescence (which force-flushes): the window timer alone
  // must push the batch out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (group.messages_delivered() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(group.messages_delivered(), 3u);
  EXPECT_EQ(group.frames_sent(), 1u);
  // Everything already arrived; this quiesce only synchronizes with the
  // delivery thread before the stack listener goes out of scope.
  group.WaitForQuiescence();
}

TEST_P(TransportGcsTest, BatchingKeepsTotalOrderAcrossSenders) {
  GroupOptions options = Options();
  options.batch_max_count = 4;
  Group group(options);
  group.RegisterCodec("int", IntCodec());
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  const MemberId mb = group.Join(&b);

  constexpr int kPerSender = 20;
  std::thread ta([&] {
    for (int i = 0; i < kPerSender; ++i) {
      ASSERT_TRUE(group.Multicast(ma, "int", Payload(i)).ok());
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerSender; ++i) {
      ASSERT_TRUE(group.Multicast(mb, "int", Payload(100 + i)).ok());
    }
  });
  ta.join();
  tb.join();
  group.WaitForQuiescence();

  const auto reference = a.seqnos();
  ASSERT_EQ(reference.size(), static_cast<size_t>(2 * kPerSender));
  for (size_t i = 1; i < reference.size(); ++i) {
    EXPECT_LT(reference[i - 1], reference[i]);
  }
  EXPECT_EQ(b.seqnos(), reference);
  EXPECT_LE(group.frames_sent(), static_cast<uint64_t>(2 * kPerSender));
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportGcsTest,
                         ::testing::Values(TransportKind::kInProcess,
                                           TransportKind::kTcp),
                         [](const ::testing::TestParamInfo<TransportKind>&
                                info) { return KindName(info.param); });

// --- In-process-only behaviour ---------------------------------------

TEST(GcsTest, MulticastLatencyIsApplied) {
  // The emulated network delay is an in-process-transport feature; the
  // TCP backend has real loopback latency instead.
  GroupOptions options;
  options.transport = TransportKind::kInProcess;
  options.multicast_delay = std::chrono::microseconds(20000);  // 20 ms
  Group group(options);
  RecordingListener a;
  const MemberId ma = group.Join(&a);
  group.WaitForQuiescence();

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(group.Multicast(ma, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            18);
}

TEST(GcsTest, PayloadSharedNotCopied) {
  // Zero-copy dissemination is the in-process transport's contract.
  GroupOptions options;
  options.transport = TransportKind::kInProcess;
  Group group(options);
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  group.Join(&b);
  auto payload = std::make_shared<const int>(42);
  const void* raw = payload.get();
  ASSERT_TRUE(group.Multicast(ma, "m", payload).ok());
  group.WaitForQuiescence();
  // Both members saw the same underlying object.
  EXPECT_EQ(group.messages_delivered(), 2u);
  auto delivered = a.payloads();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].get(), raw);
}

TEST(GcsTest, StashCarriesUncodedPayloadsOverTcp) {
  // Types with no registered codec still arrive on the TCP backend: the
  // payload parks in the group's stash and only a handle crosses the
  // wire. The delivered pointer is the sender's object.
  GroupOptions options;
  options.transport = TransportKind::kTcp;
  Group group(options);
  RecordingListener a, b;
  const MemberId ma = group.Join(&a);
  group.Join(&b);
  auto payload = std::make_shared<const int>(7);
  const void* raw = payload.get();
  ASSERT_TRUE(group.Multicast(ma, "opaque", payload).ok());
  group.WaitForQuiescence();
  auto delivered = b.payloads();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].get(), raw);
}

TEST(GcsTest, TcpJoinBackoffResetsOnceSequencerIsReachable) {
  // A joiner whose first connects fail outright (network blip) climbs
  // the exponential-backoff ladder: 1ms, 2ms, 4ms, ... When a connect
  // is then *accepted* and only the welcome handshake dies, the
  // sequencer is demonstrably back — the ladder must restart at its
  // floor instead of carrying the escalated delay into the next
  // attempt.
  GroupOptions options;
  options.transport = TransportKind::kTcp;
  Group group(options);
  RecordingListener a;
  ASSERT_NE(group.Join(&a), kInvalidMember);  // sequencer is up

  failpoint::ScopedFailpoint connect_fp("gcs.tcp.connect",
                                        "error(unavailable)*3");
  failpoint::ScopedFailpoint accept_fp("gcs.tcp.accept",
                                       "error(unavailable)*1");
  RecordingListener b;
  const MemberId mb = group.Join(&b);
  ASSERT_NE(mb, kInvalidMember);
  // Three refused connects drove the backoff to 8ms; the fourth attempt
  // reached the sequencer (welcome torn down by the accept failpoint),
  // which must have reset the ladder exactly once; the fifth joined.
  EXPECT_EQ(failpoint::Fires("gcs.tcp.connect"), 3u);
  EXPECT_EQ(failpoint::Fires("gcs.tcp.accept"), 1u);
  const obs::MetricsSnapshot snap = group.metrics().Snapshot();
  ASSERT_TRUE(snap.counters.count("gcs.tcp.backoff_resets"));
  EXPECT_EQ(snap.counters.at("gcs.tcp.backoff_resets"), 1u);
  ASSERT_TRUE(snap.counters.count("gcs.tcp.connect_retries"));
  EXPECT_GE(snap.counters.at("gcs.tcp.connect_retries"), 4u);

  // The joined member is fully functional after the bumpy join.
  ASSERT_TRUE(group.Multicast(mb, "m", Payload(1)).ok());
  group.WaitForQuiescence();
  EXPECT_GE(a.seqnos().size(), 1u);
}

}  // namespace
}  // namespace sirep::gcs
