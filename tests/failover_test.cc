// Fault-tolerance tests (paper §5.4): replica crashes with automatic
// client fail-over, the three connection states, in-doubt transaction
// resolution through global transaction ids, and uniform delivery
// guaranteeing the survival of validated writesets.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "common/failpoint.h"

namespace sirep {
namespace {

using client::Connection;
using client::ConnectionOptions;
using cluster::Cluster;
using cluster::ClusterOptions;
using sql::Value;

std::unique_ptr<Cluster> MakeCluster(size_t n) {
  ClusterOptions options;
  options.num_replicas = n;
  auto cluster = std::make_unique<Cluster>(options);
  EXPECT_TRUE(cluster->Start().ok());
  EXPECT_TRUE(cluster
                  ->ExecuteEverywhere(
                      "CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
                  .ok());
  for (int k = 0; k < 10; ++k) {
    EXPECT_TRUE(cluster
                    ->ExecuteEverywhere("INSERT INTO kv VALUES (?, 0)",
                                        {Value::Int(k)})
                    .ok());
  }
  return cluster;
}

std::unique_ptr<Connection> ConnectTo(Cluster& cluster, int replica) {
  ConnectionOptions options;
  options.pinned_replica = replica;
  auto conn = cluster.Connect(options);
  EXPECT_TRUE(conn.ok()) << conn.status();
  auto connection = std::move(conn).value();
  // Unpin so fail-over can pick any replica.
  return connection;
}

TEST(FailoverTest, DiscoveryFindsLiveReplicas) {
  auto cluster = MakeCluster(3);
  auto conn = cluster->Connect();
  ASSERT_TRUE(conn.ok());
  EXPECT_NE(conn.value()->replica(), nullptr);
}

TEST(FailoverTest, NoLiveReplicaFails) {
  auto cluster = MakeCluster(2);
  cluster->CrashReplica(0);
  cluster->CrashReplica(1);
  auto conn = cluster->Connect();
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST(FailoverTest, IdleConnectionFailsOverTransparently) {
  // Paper case 1: no transaction active at crash time — completely
  // transparent.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(true);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 1 WHERE k = 0").ok());
  // Let the remote applies land before the crash so survivors are
  // up to date (uniform delivery guarantees they would be eventually
  // anyway; the read below should not race the appliers).
  cluster->Quiesce();

  // Crash the connection's replica while idle; unpin and continue.
  cluster->CrashReplica(0);
  conn->SetAutoCommit(true);
  client::ConnectionOptions unpinned;  // (options captured at creation)
  (void)unpinned;
  // Next statement must succeed at another replica without any error...
  // except the pin: so we use an unpinned connection for this scenario.
  auto conn2 = std::move(cluster->Connect()).value();
  auto r = conn2->Execute("SELECT v FROM kv WHERE k = 0");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 1);
}

TEST(FailoverTest, MidTransactionCrashLosesTransactionButNotConnection) {
  // Paper case 2: a transaction was active, commit not yet requested —
  // the transaction is lost, the client gets an exception and can
  // restart on the same connection.
  auto cluster = MakeCluster(3);
  auto conn = std::move(cluster->Connect()).value();
  conn->SetAutoCommit(false);

  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 5 WHERE k = 1").ok());
  const auto* victim = conn->replica();
  ASSERT_NE(victim, nullptr);
  // Crash the replica the transaction lives on.
  for (size_t i = 0; i < cluster->size(); ++i) {
    if (cluster->replica(i) == victim) cluster->CrashReplica(i);
  }

  auto r = conn->Execute("UPDATE kv SET v = 6 WHERE k = 2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTransactionLost);

  // The connection failed over and is usable; the lost transaction left
  // no trace.
  auto retry = conn->Execute("SELECT v FROM kv WHERE k = 1");
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(retry.value().rows[0][0].AsInt(), 0);
  EXPECT_GE(conn->failover_count(), 1u);
}

TEST(FailoverTest, CommittedWorkSurvivesCrash) {
  // Updates committed before the crash were validated everywhere
  // (uniform reliable delivery): survivors have them.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 77 WHERE k = 3").ok());
  cluster->Quiesce();
  cluster->CrashReplica(0);

  for (size_t r = 1; r < 3; ++r) {
    auto check = cluster->db(r)->ExecuteAutoCommit(
        "SELECT v FROM kv WHERE k = 3");
    EXPECT_EQ(check.value().rows[0][0].AsInt(), 77) << "replica " << r;
  }
}

TEST(FailoverTest, InDoubtCommitResolvedAsCommitted) {
  // Paper case 3b: the crash happens after the writeset was multicast.
  // Uniform delivery means survivors validated (and will commit) it; the
  // driver's inquiry with the transaction id discovers that, and the
  // fail-over is fully transparent (Commit() returns OK).
  auto cluster = MakeCluster(3);
  middleware::SrcaRepReplica* m0 = cluster->replica(0);

  auto handle = std::move(m0->BeginTxn()).value();
  ASSERT_TRUE(m0->Execute(handle, "UPDATE kv SET v = 8 WHERE k = 4").ok());

  // Commit, then crash the local replica as soon as the commit returns.
  // To exercise the in-doubt path deterministically we instead commit
  // and *then* ask another replica about the outcome, as the driver
  // would after a crash-during-commit.
  ASSERT_TRUE(m0->CommitTxn(handle).ok());
  cluster->CrashReplica(0);

  auto outcome =
      cluster->replica(1)->InquireOutcome(handle.gid, m0->member_id());
  EXPECT_EQ(outcome, middleware::TxnOutcome::kCommitted);
  // And after the inquiry returns, the writeset is committed locally
  // (read-your-writes for the failed-over client).
  auto check = cluster->db(1)->ExecuteAutoCommit(
      "SELECT v FROM kv WHERE k = 4");
  EXPECT_EQ(check.value().rows[0][0].AsInt(), 8);
}

TEST(FailoverTest, InDoubtCommitResolvedAsLost) {
  // Paper case 3a: the writeset never reached the group (crash before
  // multicast). The new replica waits for the view change excluding the
  // origin, then reports the transaction as not committed.
  auto cluster = MakeCluster(3);
  middleware::SrcaRepReplica* m0 = cluster->replica(0);

  auto handle = std::move(m0->BeginTxn()).value();
  ASSERT_TRUE(m0->Execute(handle, "UPDATE kv SET v = 9 WHERE k = 5").ok());
  // Crash before the commit protocol runs: nobody ever hears of gid.
  cluster->CrashReplica(0);

  auto outcome =
      cluster->replica(1)->InquireOutcome(handle.gid, m0->member_id());
  EXPECT_EQ(outcome, middleware::TxnOutcome::kUnknown);
  auto check = cluster->db(1)->ExecuteAutoCommit(
      "SELECT v FROM kv WHERE k = 5");
  EXPECT_EQ(check.value().rows[0][0].AsInt(), 0);
}

TEST(FailoverTest, DriverResolvesCrashDuringCommit) {
  // End-to-end: crash the replica *while* the client is committing. The
  // driver must return either OK (writeset survived) or kTransactionLost
  // (it did not) — never a bogus error, and the surviving replicas'
  // state must match the verdict.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(false);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 123 WHERE k = 6").ok());

  std::thread crasher([&] {
    // Let the commit get going, then pull the plug.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    cluster->CrashReplica(0);
  });
  Status st = conn->Commit();
  crasher.join();
  cluster->Quiesce();

  const auto survivor_value =
      cluster->db(1)
          ->ExecuteAutoCommit("SELECT v FROM kv WHERE k = 6")
          .value()
          .rows[0][0]
          .AsInt();
  if (st.ok()) {
    EXPECT_EQ(survivor_value, 123) << "driver said committed";
  } else {
    EXPECT_EQ(st.code(), StatusCode::kTransactionLost) << st;
    EXPECT_EQ(survivor_value, 0) << "driver said lost";
  }
  // Either way the connection keeps working on a surviving replica.
  auto r = conn->Execute("SELECT v FROM kv WHERE k = 0");
  EXPECT_TRUE(r.ok()) << r.status();
  conn->Rollback();
}

TEST(FailoverTest, SessionConsistencyAfterFailover) {
  // After fail-over the client must see its own previously committed
  // updates at the new replica (the driver waits for local application).
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(conn->Execute("UPDATE kv SET v = ? WHERE k = 7",
                              {Value::Int(i)})
                    .ok());
  }
  cluster->CrashReplica(0);
  // The connection was pinned; a pinned replica that died means
  // reconnect fails — so re-issue unpinned through a fresh connection
  // bound to the same session gid state is not possible here. Instead we
  // validate the mechanism at the middleware level:
  auto outcome = cluster->replica(2)->InquireOutcome(
      middleware::GlobalTxnId{0, 5}, 0);
  EXPECT_EQ(outcome, middleware::TxnOutcome::kCommitted);
  auto check = cluster->db(2)->ExecuteAutoCommit(
      "SELECT v FROM kv WHERE k = 7");
  EXPECT_EQ(check.value().rows[0][0].AsInt(), 5);
}

// ---- deterministic crash-during-commit tests (failpoints) ----
//
// DriverResolvesCrashDuringCommit above races a crasher thread against
// the commit and accepts either verdict. The failpoint tests below pin
// the crash to an exact commit sub-stage, so each §5.4 sub-case gets
// its own deterministic assertion.

class FailpointFailoverTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointFailoverTest, InjectedCrashBeforeMulticastIsLost) {
  // §5.4 case 3a: the replica dies after local validation but before the
  // writeset enters the total order. No survivor ever hears of it, so
  // the driver must report the transaction lost — and the survivors'
  // state must be untouched.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(false);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 31 WHERE k = 6").ok());

  failpoint::ScopedFailpoint fp("mw.commit.crash.before_multicast",
                                "crash*1");
  const Status st = conn->Commit();
  EXPECT_EQ(st.code(), StatusCode::kTransactionLost) << st;
  EXPECT_EQ(failpoint::Fires("mw.commit.crash.before_multicast"), 1u);
  cluster->Quiesce();

  for (size_t r = 1; r < 3; ++r) {
    auto check =
        cluster->db(r)->ExecuteAutoCommit("SELECT v FROM kv WHERE k = 6");
    EXPECT_EQ(check.value().rows[0][0].AsInt(), 0) << "replica " << r;
  }
  // The connection failed over to a survivor and keeps working.
  auto r = conn->Execute("SELECT v FROM kv WHERE k = 0");
  EXPECT_TRUE(r.ok()) << r.status();
  conn->Rollback();
}

TEST_F(FailpointFailoverTest, InjectedCrashAfterMulticastCommits) {
  // §5.4 case 3b: the writeset entered the total order before the crash.
  // Uniform reliable delivery means every survivor commits it; in-doubt
  // resolution turns the crash into a fully transparent OK.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(false);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 32 WHERE k = 7").ok());

  failpoint::ScopedFailpoint fp("mw.commit.crash.after_multicast",
                                "crash*1");
  const Status st = conn->Commit();
  EXPECT_TRUE(st.ok()) << st;
  cluster->Quiesce();

  for (size_t r = 1; r < 3; ++r) {
    auto check =
        cluster->db(r)->ExecuteAutoCommit("SELECT v FROM kv WHERE k = 7");
    EXPECT_EQ(check.value().rows[0][0].AsInt(), 32) << "replica " << r;
  }
  // Read-your-writes on the failed-over connection.
  auto r = conn->Execute("SELECT v FROM kv WHERE k = 7");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 32);
  conn->Rollback();
}

TEST_F(FailpointFailoverTest, InjectedCrashBeforeLocalCommitCommits) {
  // §5.4 case 3b at the last possible instant: globally validated, crash
  // before the local database commit. Same client-visible outcome as
  // crashing right after the multicast.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(false);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 33 WHERE k = 8").ok());

  failpoint::ScopedFailpoint fp("mw.commit.crash.before_local_commit",
                                "crash*1");
  const Status st = conn->Commit();
  EXPECT_TRUE(st.ok()) << st;
  cluster->Quiesce();

  for (size_t r = 1; r < 3; ++r) {
    auto check =
        cluster->db(r)->ExecuteAutoCommit("SELECT v FROM kv WHERE k = 8");
    EXPECT_EQ(check.value().rows[0][0].AsInt(), 33) << "replica " << r;
  }
}

TEST_F(FailpointFailoverTest, TransientMulticastDropAbortsWithoutFailover) {
  // A dropped send from a replica that did NOT crash: the middleware
  // aborts the transaction locally and the driver reports it lost
  // without asking anyone — there is no in-doubt question, the writeset
  // never entered the total order. The replica and connection stay up.
  auto cluster = MakeCluster(3);
  client::ConnectionOptions copt;
  copt.pinned_replica = 0;
  auto conn = std::move(cluster->Connect(copt)).value();
  conn->SetAutoCommit(false);
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 34 WHERE k = 9").ok());

  {
    failpoint::ScopedFailpoint fp("gcs.send", "error(unavailable)*1");
    const Status st = conn->Commit();
    EXPECT_EQ(st.code(), StatusCode::kTransactionLost) << st;
  }
  ASSERT_TRUE(cluster->replica(0)->IsAlive());
  EXPECT_EQ(conn->failover_count(), 0u);
  cluster->Quiesce();
  for (size_t r = 0; r < 3; ++r) {
    auto check =
        cluster->db(r)->ExecuteAutoCommit("SELECT v FROM kv WHERE k = 9");
    EXPECT_EQ(check.value().rows[0][0].AsInt(), 0) << "replica " << r;
  }
  // Retrying on the same connection (and same replica) succeeds.
  ASSERT_TRUE(conn->Execute("UPDATE kv SET v = 34 WHERE k = 9").ok());
  ASSERT_TRUE(conn->Commit().ok());
  cluster->Quiesce();
  auto check =
      cluster->db(1)->ExecuteAutoCommit("SELECT v FROM kv WHERE k = 9");
  EXPECT_EQ(check.value().rows[0][0].AsInt(), 34);
}

TEST_F(FailpointFailoverTest, ConnectRetriesThroughTransientDiscoveryFailure) {
  // The driver's connect path retries kUnavailable with backoff until
  // its deadline: two injected discovery failures delay the connection
  // but do not kill it.
  auto cluster = MakeCluster(2);
  failpoint::ScopedFailpoint fp("client.connect", "error(unavailable)*2");
  auto conn = cluster->Connect();
  ASSERT_TRUE(conn.ok()) << conn.status();
  EXPECT_EQ(failpoint::Fires("client.connect"), 2u);
  auto r = conn.value()->Execute("SELECT v FROM kv WHERE k = 0");
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(FailoverTest, MulticastFromCrashedReplicaRejected) {
  auto cluster = MakeCluster(2);
  cluster->CrashReplica(0);
  auto txn = cluster->replica(0)->BeginTxn();
  EXPECT_FALSE(txn.ok());
  EXPECT_EQ(txn.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace sirep
