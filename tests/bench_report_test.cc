// Bench telemetry artifacts (ISSUE 10): BenchReport JSON round-trip,
// percentile math through the obs histogram bridge, the contention
// derivation from mw.lock.* families, CompareReports' tolerance-band
// semantics, and the bench_compare tool's exit codes (driven in-process
// through RunBenchCompare against temp directories).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "obs/metrics.h"

namespace sirep::bench {
namespace {

namespace fs = std::filesystem;

BenchReport MakeReport() {
  BenchReport report("unit_bench");
  report.SetSeed(42);
  report.SetKnob("replicas", uint64_t{5});
  report.SetKnob("metrics_source", "local");
  report.AddScalar("series@100.tps", 123.5, "tps",
                   Direction::kHigherIsBetter);
  report.AddScalar("series@100.update_ms", 17.25, "ms",
                   Direction::kLowerIsBetter, /*tolerance=*/0.25);
  report.AddScalar("series@100.abort_pct", 0.4, "%", Direction::kInfo);
  obs::HistogramSnapshot::Percentiles p;
  p.count = 1000;
  p.mean = 10.5;
  p.p50 = 9.0;
  p.p95 = 30.0;
  p.p99 = 55.0;
  report.AddPercentiles("series.update_ms", p, "ms");
  return report;
}

TEST(BenchReportTest, JsonRoundTripPreservesEverySection) {
  BenchReport report = MakeReport();

  // Attach a cluster snapshot carrying lock-contention families: the
  // contention section must be derived from them.
  obs::MetricsRegistry registry;
  registry.GetCounter("mw.committed")->Add(7);
  registry.GetCounter("mw.lock.holes.acquires")->Add(100);
  registry.GetCounter("mw.lock.holes.contended")->Add(3);
  registry.GetLatencyHistogram("mw.lock.holes.wait_us")->Observe(120);
  report.AttachClusterMetrics(registry.Snapshot());

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);

  auto parsed = BenchReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const BenchReport& r = parsed.value();

  EXPECT_EQ(r.name(), "unit_bench");
  EXPECT_EQ(r.seed(), 42u);
  EXPECT_EQ(r.knobs().at("replicas"), "5");
  EXPECT_EQ(r.knobs().at("metrics_source"), "local");

  ASSERT_EQ(r.scalars().size(), 3u);
  const ScalarMetric& tps = r.scalars().at("series@100.tps");
  EXPECT_DOUBLE_EQ(tps.value, 123.5);
  EXPECT_EQ(tps.unit, "tps");
  EXPECT_EQ(tps.direction, Direction::kHigherIsBetter);
  EXPECT_LT(tps.tolerance, 0);  // unset stays unset across the trip
  const ScalarMetric& lat = r.scalars().at("series@100.update_ms");
  EXPECT_EQ(lat.direction, Direction::kLowerIsBetter);
  EXPECT_DOUBLE_EQ(lat.tolerance, 0.25);

  ASSERT_EQ(r.percentiles().count("series.update_ms"), 1u);
  const PercentileRow& row = r.percentiles().at("series.update_ms");
  EXPECT_EQ(row.count, 1000u);
  EXPECT_DOUBLE_EQ(row.mean, 10.5);
  EXPECT_DOUBLE_EQ(row.p50, 9.0);
  EXPECT_DOUBLE_EQ(row.p95, 30.0);
  EXPECT_DOUBLE_EQ(row.p99, 55.0);
  EXPECT_EQ(row.unit, "ms");

  ASSERT_EQ(r.contention().count("mw.lock.holes"), 1u);
  const ContentionRow& lock = r.contention().at("mw.lock.holes");
  EXPECT_EQ(lock.acquires, 100u);
  EXPECT_EQ(lock.contended, 3u);
  EXPECT_GT(lock.wait_p95_us, 0);

  // The embedded cluster JSON survives and still parses as a snapshot.
  ASSERT_FALSE(r.cluster_json().empty());
  auto snap = obs::MetricsSnapshot::FromJson(r.cluster_json());
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().counters.at("mw.committed"), 7u);
}

TEST(BenchReportTest, FromJsonRejectsGarbageAndWrongSchema) {
  EXPECT_FALSE(BenchReport::FromJson("").ok());
  EXPECT_FALSE(BenchReport::FromJson("not json").ok());
  EXPECT_FALSE(BenchReport::FromJson("{\"name\":\"x\"}").ok());  // no version
  EXPECT_FALSE(
      BenchReport::FromJson("{\"schema_version\":999,\"name\":\"x\"}").ok());
}

TEST(BenchReportTest, PercentileBridgeMatchesHistogram) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetLatencyHistogram("test.lat_us");
  for (int i = 1; i <= 100; ++i) hist->Observe(i * 10);
  const auto p = registry.Snapshot().Percentiles("test.lat_us");

  BenchReport report("percentile_bench");
  report.AddPercentiles("lat_us", p, "us");
  auto parsed = BenchReport::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok());
  const PercentileRow& row = parsed.value().percentiles().at("lat_us");
  EXPECT_EQ(row.count, 100u);
  EXPECT_DOUBLE_EQ(row.p50, p.p50);
  EXPECT_DOUBLE_EQ(row.p95, p.p95);
  EXPECT_DOUBLE_EQ(row.p99, p.p99);
  EXPECT_LE(row.p50, row.p95);
  EXPECT_LE(row.p95, row.p99);
}

TEST(CompareTest, WithinToleranceAndDriftTheGoodWayPass) {
  BenchReport baseline("b"), current("b");
  baseline.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  baseline.AddScalar("ms", 10, "ms", Direction::kLowerIsBetter);
  current.AddScalar("tps", 95, "tps", Direction::kHigherIsBetter);  // -5 %
  current.AddScalar("ms", 200, "ms", Direction::kHigherIsBetter);
  // Direction comes from the BASELINE row; current claiming otherwise
  // must not matter — but 200 ms vs 10 ms is way out of band the bad
  // way, so flip it to an improvement instead:
  current.AddScalar("ms", 5, "ms", Direction::kLowerIsBetter);

  const CompareResult result =
      CompareReports(baseline, current, {.default_tolerance = 0.10});
  EXPECT_FALSE(result.regressed);
  ASSERT_EQ(result.rows.size(), 2u);
  for (const auto& row : result.rows) EXPECT_FALSE(row.regressed);
}

TEST(CompareTest, DriftBeyondToleranceRegresses) {
  BenchReport baseline("b"), current("b");
  baseline.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  current.AddScalar("tps", 80, "tps", Direction::kHigherIsBetter);  // -20 %
  EXPECT_TRUE(
      CompareReports(baseline, current, {.default_tolerance = 0.10})
          .regressed);
  // A latency metric regresses in the other direction.
  BenchReport base2("b"), cur2("b");
  base2.AddScalar("ms", 10, "ms", Direction::kLowerIsBetter);
  cur2.AddScalar("ms", 12, "ms", Direction::kLowerIsBetter);  // +20 %
  EXPECT_TRUE(CompareReports(base2, cur2, {.default_tolerance = 0.10})
                  .regressed);
}

TEST(CompareTest, PerMetricToleranceOverridesDefault) {
  BenchReport baseline("b"), current("b");
  baseline.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter,
                     /*tolerance=*/0.5);
  current.AddScalar("tps", 60, "tps", Direction::kHigherIsBetter);  // -40 %
  // Within the metric's own 50 % band even though the default is 10 %.
  EXPECT_FALSE(
      CompareReports(baseline, current, {.default_tolerance = 0.10})
          .regressed);
  current.AddScalar("tps", 40, "tps", Direction::kHigherIsBetter);  // -60 %
  EXPECT_TRUE(
      CompareReports(baseline, current, {.default_tolerance = 0.10})
          .regressed);
}

TEST(CompareTest, InfoMetricsNeverGate) {
  BenchReport baseline("b"), current("b");
  baseline.AddScalar("abort_pct", 0.1, "%", Direction::kInfo);
  current.AddScalar("abort_pct", 99.0, "%", Direction::kInfo);
  const CompareResult result = CompareReports(baseline, current);
  EXPECT_FALSE(result.regressed);
  EXPECT_TRUE(result.rows.empty());
}

TEST(CompareTest, MetricMissingFromCurrentRegresses) {
  BenchReport baseline("b"), current("b");
  baseline.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  const CompareResult result = CompareReports(baseline, current);
  EXPECT_TRUE(result.regressed);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].note, "missing in current");
}

TEST(CompareTest, NewCurrentMetricsAreIgnored) {
  BenchReport baseline("b"), current("b");
  baseline.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  current.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  current.AddScalar("brand_new", 1, "x", Direction::kLowerIsBetter);
  EXPECT_FALSE(CompareReports(baseline, current).regressed);
}

// ---- the bench_compare tool end to end (exit codes) -------------------

class BenchCompareToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("bench_report_test_" +
             std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    baseline_dir_ = root_ / "baseline";
    current_dir_ = root_ / "current";
    fs::create_directories(baseline_dir_);
    fs::create_directories(current_dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void WriteArtifact(const fs::path& dir, const BenchReport& report) {
    std::ofstream file(dir / ("BENCH_" + report.name() + ".json"));
    file << report.ToJson() << "\n";
  }

  int Run(const std::vector<std::string>& extra) {
    std::vector<std::string> args = {"bench_compare"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    for (std::string& arg : args) argv.push_back(arg.data());
    return RunBenchCompare(static_cast<int>(argv.size()), argv.data());
  }

  fs::path root_, baseline_dir_, current_dir_;
};

TEST_F(BenchCompareToolTest, PassesOnMatchingDirs) {
  BenchReport report("unit_bench");
  report.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  WriteArtifact(baseline_dir_, report);
  WriteArtifact(current_dir_, report);
  EXPECT_EQ(Run({baseline_dir_.string(), current_dir_.string()}), 0);
}

TEST_F(BenchCompareToolTest, InflatedBaselineMetricFailsTheGate) {
  // The acceptance scenario: a baseline claiming more throughput than
  // the current run delivers must make the gate exit non-zero.
  BenchReport baseline("unit_bench");
  baseline.AddScalar("tps", 1000, "tps", Direction::kHigherIsBetter);
  BenchReport current("unit_bench");
  current.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  WriteArtifact(baseline_dir_, baseline);
  WriteArtifact(current_dir_, current);
  EXPECT_EQ(Run({"--tolerance", "0.5", baseline_dir_.string(),
                 current_dir_.string()}),
            1);
}

TEST_F(BenchCompareToolTest, BaselineWithoutCurrentArtifactFails) {
  BenchReport report("unit_bench");
  report.AddScalar("tps", 100, "tps", Direction::kHigherIsBetter);
  WriteArtifact(baseline_dir_, report);  // nothing in current_dir_
  EXPECT_EQ(Run({baseline_dir_.string(), current_dir_.string()}), 1);
}

TEST_F(BenchCompareToolTest, SingleFileModeAndUsageErrors) {
  BenchReport baseline("unit_bench");
  baseline.AddScalar("ms", 10, "ms", Direction::kLowerIsBetter);
  BenchReport slow("unit_bench");
  slow.AddScalar("ms", 30, "ms", Direction::kLowerIsBetter);
  const fs::path base_file = baseline_dir_ / "BENCH_unit_bench.json";
  const fs::path slow_file = current_dir_ / "BENCH_unit_bench.json";
  WriteArtifact(baseline_dir_, baseline);
  WriteArtifact(current_dir_, slow);

  EXPECT_EQ(Run({base_file.string(), base_file.string()}), 0);
  EXPECT_EQ(Run({base_file.string(), slow_file.string()}), 1);
  // Unreadable baseline is an I/O error, not a regression verdict.
  EXPECT_EQ(Run({(root_ / "nope.json").string(), base_file.string()}), 2);
  EXPECT_EQ(Run({}), 2);  // missing positional args
}

}  // namespace
}  // namespace sirep::bench
