// Unit tests for the SQL parser: every statement kind, expression
// precedence, parameters, and error paths.

#include "sql/parser.h"

#include <gtest/gtest.h>

namespace sirep::sql {
namespace {

Statement MustParse(const std::string& sql) {
  auto result = Parse(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
  return std::move(result).value();
}

TEST(ParserTest, CreateTable) {
  auto stmt = MustParse(
      "CREATE TABLE t (id INT, name VARCHAR(20), price DOUBLE, ok BOOL, "
      "PRIMARY KEY (id))");
  ASSERT_EQ(stmt.kind, StatementKind::kCreateTable);
  const auto& ct = *stmt.create_table;
  EXPECT_EQ(ct.table, "t");
  ASSERT_EQ(ct.columns.size(), 4u);
  EXPECT_EQ(ct.columns[0].name, "id");
  EXPECT_EQ(ct.columns[0].type, ValueType::kInt);
  EXPECT_EQ(ct.columns[1].type, ValueType::kString);
  EXPECT_EQ(ct.columns[2].type, ValueType::kDouble);
  EXPECT_EQ(ct.columns[3].type, ValueType::kBool);
  ASSERT_EQ(ct.key_columns.size(), 1u);
  EXPECT_EQ(ct.key_columns[0], "id");
}

TEST(ParserTest, CreateTableCompositeKey) {
  auto stmt = MustParse(
      "CREATE TABLE ol (o INT, i INT, qty INT, PRIMARY KEY (o, i))");
  ASSERT_EQ(stmt.create_table->key_columns.size(), 2u);
}

TEST(ParserTest, CreateTableRequiresPrimaryKey) {
  EXPECT_FALSE(Parse("CREATE TABLE t (id INT)").ok());
}

TEST(ParserTest, InsertPositional) {
  auto stmt = MustParse("INSERT INTO t VALUES (1, 'a', 2.5, NULL)");
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  EXPECT_EQ(stmt.insert->table, "t");
  EXPECT_TRUE(stmt.insert->columns.empty());
  ASSERT_EQ(stmt.insert->values.size(), 4u);
  EXPECT_EQ(stmt.insert->values[0]->literal, Value::Int(1));
  EXPECT_TRUE(stmt.insert->values[3]->literal.is_null());
}

TEST(ParserTest, InsertWithColumnList) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (?, ?)");
  ASSERT_EQ(stmt.insert->columns.size(), 2u);
  EXPECT_EQ(stmt.insert->values[0]->kind, ExprKind::kParam);
  EXPECT_EQ(stmt.insert->values[0]->param_index, 0);
  EXPECT_EQ(stmt.insert->values[1]->param_index, 1);
}

TEST(ParserTest, SelectStar) {
  auto stmt = MustParse("SELECT * FROM t");
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  EXPECT_TRUE(stmt.select->star);
  EXPECT_EQ(stmt.select->table(), "t");
  EXPECT_EQ(stmt.select->where, nullptr);
}

TEST(ParserTest, SelectColumnsWhereOrderLimit) {
  auto stmt = MustParse(
      "SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY b DESC LIMIT 10");
  const auto& sel = *stmt.select;
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[0].column, "a");
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->bin_op, BinOp::kAnd);
  ASSERT_TRUE(sel.order_by.has_value());
  EXPECT_EQ(*sel.order_by, "b");
  EXPECT_TRUE(sel.order_desc);
  EXPECT_EQ(sel.limit, 10);
}

TEST(ParserTest, SelectAggregates) {
  auto stmt = MustParse(
      "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t");
  const auto& sel = *stmt.select;
  ASSERT_EQ(sel.items.size(), 5u);
  EXPECT_EQ(sel.items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(sel.items[0].star);
  EXPECT_EQ(sel.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(sel.items[1].column, "x");
  EXPECT_EQ(sel.items[4].agg, AggFunc::kMax);
}

TEST(ParserTest, StarOnlyValidInCount) {
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, Update) {
  auto stmt = MustParse("UPDATE t SET a = a + 1, b = ? WHERE id = 3");
  ASSERT_EQ(stmt.kind, StatementKind::kUpdate);
  const auto& up = *stmt.update;
  ASSERT_EQ(up.assignments.size(), 2u);
  EXPECT_EQ(up.assignments[0].first, "a");
  EXPECT_EQ(up.assignments[0].second->bin_op, BinOp::kAdd);
  ASSERT_NE(up.where, nullptr);
}

TEST(ParserTest, Delete) {
  auto stmt = MustParse("DELETE FROM t WHERE id = 1");
  ASSERT_EQ(stmt.kind, StatementKind::kDelete);
  EXPECT_EQ(stmt.delete_->table, "t");
  ASSERT_NE(stmt.delete_->where, nullptr);
}

TEST(ParserTest, DeleteWithoutWhere) {
  auto stmt = MustParse("DELETE FROM t");
  EXPECT_EQ(stmt.delete_->where, nullptr);
}

TEST(ParserTest, TransactionControl) {
  EXPECT_EQ(MustParse("BEGIN").kind, StatementKind::kBegin);
  EXPECT_EQ(MustParse("COMMIT").kind, StatementKind::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK").kind, StatementKind::kRollback);
  EXPECT_EQ(MustParse("ABORT").kind, StatementKind::kRollback);
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_EQ(MustParse("COMMIT;").kind, StatementKind::kCommit);
  EXPECT_EQ(MustParse("SELECT * FROM t;").kind, StatementKind::kSelect);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parse("COMMIT COMMIT").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t 123").ok());  // "t extra" would be an alias
}

TEST(ParserTest, ExpressionPrecedence) {
  // a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3)
  auto stmt = MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  const auto* where = stmt.select->where.get();
  ASSERT_EQ(where->bin_op, BinOp::kOr);
  EXPECT_EQ(where->right->bin_op, BinOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3)
  auto stmt = MustParse("UPDATE t SET a = 1 + 2 * 3");
  const auto* expr = stmt.update->assignments[0].second.get();
  ASSERT_EQ(expr->bin_op, BinOp::kAdd);
  EXPECT_EQ(expr->right->bin_op, BinOp::kMul);
}

TEST(ParserTest, ParensOverridePrecedence) {
  auto stmt = MustParse("UPDATE t SET a = (1 + 2) * 3");
  const auto* expr = stmt.update->assignments[0].second.get();
  ASSERT_EQ(expr->bin_op, BinOp::kMul);
  EXPECT_EQ(expr->left->bin_op, BinOp::kAdd);
}

TEST(ParserTest, UnaryAndIsNull) {
  auto stmt = MustParse(
      "SELECT * FROM t WHERE NOT a = 1 AND b IS NULL AND c IS NOT NULL "
      "AND d = -5");
  EXPECT_NE(stmt.select->where, nullptr);
}

TEST(ParserTest, ParamNumberingIsLeftToRight) {
  auto stmt = MustParse("UPDATE t SET a = ?, b = ? WHERE id = ?");
  EXPECT_EQ(stmt.update->assignments[0].second->param_index, 0);
  EXPECT_EQ(stmt.update->assignments[1].second->param_index, 1);
  // WHERE id = ? is the third param.
  const auto* where = stmt.update->where.get();
  EXPECT_EQ(where->right->param_index, 2);
}

TEST(ParserTest, ErrorsCarryOffset) {
  auto result = Parse("SELECT FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, VariousMalformedInputs) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELEC * FROM t").ok());
  EXPECT_FALSE(Parse("INSERT INTO t").ok());
  EXPECT_FALSE(Parse("UPDATE t WHERE a = 1").ok());
  EXPECT_FALSE(Parse("DELETE t").ok());
  EXPECT_FALSE(Parse("CREATE TABLE (id INT, PRIMARY KEY (id))").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t LIMIT x").ok());
}

TEST(ParserTest, ReadOnlyClassification) {
  EXPECT_TRUE(MustParse("SELECT * FROM t").IsReadOnly());
  EXPECT_FALSE(MustParse("UPDATE t SET a = 1").IsReadOnly());
  EXPECT_FALSE(MustParse("INSERT INTO t VALUES (1)").IsReadOnly());
  EXPECT_FALSE(MustParse("DELETE FROM t").IsReadOnly());
}

TEST(ParserTest, FromListAndAliases) {
  auto stmt = MustParse("SELECT a.x FROM t1 a, t2 AS b, t3");
  const auto& sel = *stmt.select;
  ASSERT_EQ(sel.tables.size(), 3u);
  EXPECT_EQ(sel.tables[0].table, "t1");
  EXPECT_EQ(sel.tables[0].alias, "a");
  EXPECT_EQ(sel.tables[1].alias, "b");
  EXPECT_EQ(sel.tables[2].alias, "t3");  // defaults to the table name
  EXPECT_EQ(sel.items[0].column, "a.x");
}

TEST(ParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = MustParse(
      "SELECT x FROM t1 JOIN t2 ON t1.a = t2.b WHERE t1.c = 1");
  const auto& sel = *stmt.select;
  ASSERT_EQ(sel.tables.size(), 2u);
  // ON and WHERE combined with AND.
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->bin_op, BinOp::kAnd);
}

TEST(ParserTest, GroupByList) {
  auto stmt = MustParse(
      "SELECT a, b, COUNT(*) FROM t GROUP BY a, b ORDER BY 3 DESC");
  const auto& sel = *stmt.select;
  ASSERT_EQ(sel.group_by.size(), 2u);
  EXPECT_EQ(sel.group_by[0], "a");
  EXPECT_EQ(sel.order_by_position, 3);
  EXPECT_TRUE(sel.order_desc);
}

TEST(ParserTest, OrderByAggregateNormalized) {
  auto stmt = MustParse(
      "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY SUM(b) DESC");
  ASSERT_TRUE(stmt.select->order_by.has_value());
  EXPECT_EQ(*stmt.select->order_by, "sum(b)");
  auto count = MustParse("SELECT COUNT(*) FROM t ORDER BY COUNT(*)");
  EXPECT_EQ(*count.select->order_by, "count(*)");
}

TEST(ParserTest, QualifiedColumnsInExpressions) {
  auto stmt = MustParse("SELECT x FROM t a WHERE a.k = 3 AND a.v > a.w");
  EXPECT_NE(stmt.select->where, nullptr);
  EXPECT_EQ(stmt.select->where->left->left->column, "a.k");
}

TEST(ParserTest, OrderByPositionMustBePositive) {
  EXPECT_FALSE(Parse("SELECT a FROM t ORDER BY 0").ok());
}

TEST(ParserTest, MalformedJoinRejected) {
  EXPECT_FALSE(Parse("SELECT x FROM t1 JOIN").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t1 JOIN t2 ON").ok());
  EXPECT_FALSE(Parse("SELECT a. FROM t").ok());
}

}  // namespace
}  // namespace sirep::sql
